//! Repo automation. `cargo run -p xtask -- lint` enforces two rules
//! on the protocol hot paths (the NI communication layer and the SVM
//! protocol engines):
//!
//! 1. **No wildcard `_ =>` arms.** Protocol message and upcall enums
//!    grow; a wildcard arm silently swallows a new variant instead of
//!    failing the build where the handler must be written.
//! 2. **No bare `.unwrap()`.** Protocol code runs inside the fault and
//!    sync engines where a panic wedges the whole simulated node;
//!    fallible lookups must surface a typed error (`.expect(..)` with
//!    a stated invariant is allowed).
//!
//! Both rules apply only to non-test code: everything before the first
//! `#[cfg(test)]` in each file, and only to actual code — comments and
//! string/char literals are stripped before matching, so an error
//! message mentioning `.unwrap()` or a doc example with `_ =>` never
//! trips the gate. A finding can be waived in place with a trailing
//! `// lint: allow-wildcard` or `// lint: allow-unwrap` comment on the
//! offending line.
//!
//! `cargo run -p xtask -- clippy` is the warnings gate: it runs
//! `cargo clippy --workspace --all-targets -- -D warnings` plus the
//! pinned [`CLIPPY_ALLOW`] list, so the allow-list lives in one
//! reviewed place instead of scattered CI flags.
//!
//! Two observability commands ride along:
//!
//! * `xtask obs-summary <file> [top]` — prints a top-N aggregation of
//!   a Chrome-trace timeline (per span kind and per node), or the NI
//!   monitor tables when given a `RunReport` JSON instead.
//! * `xtask obs-schema <file>...` — checks `BENCH_breakdowns.json` /
//!   `BENCH_fault_matrix.json` / `BENCH_barrier.json` /
//!   `BENCH_rdma.json` / `BENCH_critpath.json` against the expected
//!   shape; CI fails the `obs-smoke`, `coll-smoke`, `rdma-smoke` and
//!   `critpath-smoke` jobs on a mismatch.
//! * `xtask prof-summary <BENCH_critpath.json>` — validates a
//!   critical-path report and renders the per-(app, column) segment
//!   breakdown table.

use genima_obs::{monitor_tables, trace_top, Grid, Json};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Files the lint gate covers, relative to the repo root.
const PROTOCOL_PATHS: &[&str] = &[
    "crates/coll/src/lib.rs",
    "crates/coll/src/state.rs",
    "crates/coll/src/tree.rs",
    "crates/mem/src/diff.rs",
    "crates/mem/src/pool.rs",
    "crates/nic/src/comm.rs",
    "crates/nic/src/model.rs",
    "crates/rnic/src/config.rs",
    "crates/rnic/src/model.rs",
    "crates/rnic/src/profile.rs",
    "crates/rnic/src/lib.rs",
    "crates/proto/src/sched.rs",
    "crates/proto/src/system/mod.rs",
    "crates/proto/src/system/exec.rs",
    "crates/proto/src/system/fault.rs",
    "crates/proto/src/system/sync.rs",
    "crates/fault/src/inject.rs",
    "crates/fault/src/plan.rs",
    "crates/mc/src/lib.rs",
    "crates/mc/src/explore.rs",
    "crates/mc/src/litmus.rs",
    "crates/mc/src/trace.rs",
    "crates/mc/src/bin/mc.rs",
    "crates/mc/src/bin/mc_bench.rs",
    "crates/obs/src/json.rs",
    "crates/obs/src/ring.rs",
    "crates/obs/src/span.rs",
    "crates/obs/src/summary.rs",
    "crates/obs/src/timeline.rs",
    "crates/obs/src/lib.rs",
    "crates/prof/src/dag.rs",
    "crates/prof/src/folded.rs",
    "crates/prof/src/profile.rs",
    "crates/prof/src/segment.rs",
    "crates/prof/src/lib.rs",
    "crates/serve/src/arrival.rs",
    "crates/serve/src/kv.rs",
    "crates/serve/src/walk.rs",
    "crates/serve/src/zipf.rs",
    "crates/serve/src/lib.rs",
    "crates/serve/src/bin/serving_bench.rs",
];

/// Clippy lints deliberately allowed workspace-wide by `xtask clippy`,
/// each pinned with the reason it stays. Everything else is `-D
/// warnings`. Keep this list empty unless a lint is structurally
/// unavoidable — prefer a scoped in-source `#[allow]` with a comment.
const CLIPPY_ALLOW: &[(&str, &str)] = &[];

/// The six evaluation columns every breakdowns report must carry:
/// the paper's five on the 1999 LANai, plus the full GeNIMA protocol
/// on the 2025 RNIC.
const COLUMNS: &[&str] = &["Base", "DW", "DW+RF", "DW+RF+DD", "GeNIMA", "GeNIMA-2025"];

/// One rule violation at a source line.
#[derive(Debug, PartialEq, Eq)]
struct Finding {
    file: String,
    line: usize,
    rule: &'static str,
    text: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: {}\n    {}",
            self.file,
            self.line,
            self.rule,
            self.text.trim()
        )
    }
}

/// Strips comments and string/char-literal contents from Rust source,
/// preserving the line structure (every `\n` survives) so findings in
/// the result map back to the original line numbers. Handles line
/// comments, nested block comments, plain and raw (byte) strings, char
/// literals, and leaves lifetimes (`'a`) alone. A proper lexer would
/// be overkill; this scanner exists so `_ =>` or `.unwrap()` inside a
/// doc comment, an error message, or a format string never trips the
/// lint.
fn strip_noncode(source: &str) -> String {
    let b: Vec<char> = source.chars().collect();
    let mut out = String::with_capacity(source.len());
    let keep_newlines = |out: &mut String, span: &[char]| {
        out.extend(span.iter().filter(|&&c| c == '\n'));
    };
    let mut i = 0usize;
    while i < b.len() {
        let c = b[i];
        let next = b.get(i + 1).copied();
        match c {
            '/' if next == Some('/') => {
                // Line comment: drop to end of line (newline kept by
                // the outer loop).
                while i < b.len() && b[i] != '\n' {
                    i += 1;
                }
            }
            '/' if next == Some('*') => {
                // Block comment; Rust nests them.
                let start = i;
                let mut depth = 1u32;
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == '/' && b.get(i + 1) == Some(&'*') {
                        depth += 1;
                        i += 2;
                    } else if b[i] == '*' && b.get(i + 1) == Some(&'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                keep_newlines(&mut out, &b[start..i]);
            }
            '"' => {
                // String literal: skip contents, honoring escapes.
                let start = i;
                i += 1;
                while i < b.len() {
                    match b[i] {
                        '\\' => i += 2,
                        '"' => {
                            i += 1;
                            break;
                        }
                        _ => i += 1,
                    }
                }
                keep_newlines(&mut out, &b[start..i]);
            }
            'r' | 'b' if raw_string_hashes(&b, i).is_some() && (i == 0 || !is_ident(b[i - 1])) => {
                // Raw (byte) string: r"..", r#".."#, br#".."# — no
                // escapes; ends at `"` followed by the opening hashes.
                let hashes = raw_string_hashes(&b, i).expect("guard checked");
                let start = i;
                while i < b.len() && b[i] != '"' {
                    i += 1;
                }
                i += 1; // opening quote
                'scan: while i < b.len() {
                    if b[i] == '"' {
                        let mut j = 0;
                        while j < hashes && b.get(i + 1 + j) == Some(&'#') {
                            j += 1;
                        }
                        if j == hashes {
                            i += 1 + hashes;
                            break 'scan;
                        }
                    }
                    i += 1;
                }
                keep_newlines(&mut out, &b[start..i.min(b.len())]);
            }
            '\'' => {
                if next == Some('\\') {
                    // Escaped char literal ('\n', '\u{..}', '\'').
                    i += 2;
                    while i < b.len() && b[i] != '\'' {
                        i += 1;
                    }
                    i += 1;
                } else if next.is_some() && b.get(i + 2) == Some(&'\'') {
                    // Plain char literal 'x'.
                    i += 3;
                } else {
                    // Lifetime — part of the code proper.
                    out.push('\'');
                    i += 1;
                }
            }
            _ => {
                out.push(c);
                i += 1;
            }
        }
    }
    out
}

/// If `b[i]` starts a raw-string opener (`r` or `br` followed by zero
/// or more `#` and a quote), returns the hash count.
fn raw_string_hashes(b: &[char], i: usize) -> Option<usize> {
    let mut j = i;
    if b.get(j) == Some(&'b') {
        j += 1;
    }
    if b.get(j) != Some(&'r') {
        return None;
    }
    j += 1;
    let mut hashes = 0;
    while b.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    (b.get(j) == Some(&'"')).then_some(hashes)
}

/// Identifier character, for telling `r"..."` from an identifier that
/// merely ends in `r`.
fn is_ident(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Returns `true` when the line carries the given waiver comment.
fn waived(line: &str, waiver: &str) -> bool {
    line.contains(waiver)
}

/// Lints one file's contents, reporting findings under `name`. Rules
/// match against the comment- and string-stripped view of each line;
/// waivers match against the original line (they live in comments).
fn lint_source(name: &str, source: &str) -> Vec<Finding> {
    let stripped = strip_noncode(source);
    let mut findings = Vec::new();
    for (i, (code, line)) in stripped.lines().zip(source.lines()).enumerate() {
        // The first `#[cfg(test)]` starts the test module; everything
        // after it is exercised only by the test harness.
        if code.trim_start().starts_with("#[cfg(test)]") {
            break;
        }
        if code.contains("_ =>") && !waived(line, "lint: allow-wildcard") {
            findings.push(Finding {
                file: name.to_string(),
                line: i + 1,
                rule: "wildcard `_ =>` arm in protocol code",
                text: line.to_string(),
            });
        }
        if code.contains(".unwrap()") && !waived(line, "lint: allow-unwrap") {
            findings.push(Finding {
                file: name.to_string(),
                line: i + 1,
                rule: "bare `.unwrap()` in protocol code",
                text: line.to_string(),
            });
        }
    }
    findings
}

/// The workspace root, two levels above this crate's manifest.
fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..")
        .canonicalize()
        .expect("xtask lives two levels below the workspace root")
}

fn run_lint() -> ExitCode {
    let root = repo_root();
    let mut findings = Vec::new();
    for rel in PROTOCOL_PATHS {
        let path = root.join(rel);
        let source = match std::fs::read_to_string(&path) {
            Ok(s) => s,
            Err(err) => {
                eprintln!("xtask lint: cannot read {}: {err}", path.display());
                return ExitCode::FAILURE;
            }
        };
        findings.extend(lint_source(rel, &source));
    }
    if findings.is_empty() {
        println!("xtask lint: {} protocol files clean", PROTOCOL_PATHS.len());
        ExitCode::SUCCESS
    } else {
        for f in &findings {
            eprintln!("{f}");
        }
        eprintln!("xtask lint: {} finding(s)", findings.len());
        ExitCode::FAILURE
    }
}

fn load_json(path: &str) -> Result<Json, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    Json::parse(&text).map_err(|e| format!("{path}: {e}"))
}

/// `xtask obs-summary <file> [top]`: a Chrome-trace array gets the
/// top-N span aggregation; a `RunReport` JSON gets the monitor tables.
fn run_obs_summary(path: &str, top: usize) -> ExitCode {
    let v = match load_json(path) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("xtask obs-summary: {e}");
            return ExitCode::FAILURE;
        }
    };
    let rendered = if v.as_arr().is_some() {
        trace_top(&v, top)
    } else if v.get("monitor").is_some() {
        monitor_tables(&[(path, &v)])
    } else {
        Err("expected a trace-event array or a RunReport object with a `monitor` key".to_string())
    };
    match rendered {
        Ok(text) => {
            println!("{text}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("xtask obs-summary: {path}: {e}");
            ExitCode::FAILURE
        }
    }
}

fn check_breakdowns_schema(v: &Json) -> Result<(), String> {
    let apps = v
        .get("apps")
        .and_then(Json::as_obj)
        .ok_or_else(|| "missing `apps` object".to_string())?;
    if apps.is_empty() {
        return Err("`apps` is empty".to_string());
    }
    for (name, entry) in apps {
        if entry.get("sequential_ms").and_then(Json::as_f64).is_none() {
            return Err(format!("app {name}: missing numeric `sequential_ms`"));
        }
        let cols = entry
            .get("columns")
            .ok_or_else(|| format!("app {name}: missing `columns`"))?;
        for col in COLUMNS {
            let c = cols
                .get(col)
                .ok_or_else(|| format!("app {name}: missing column `{col}`"))?;
            for key in ["parallel_ms", "speedup"] {
                if c.get(key).and_then(Json::as_f64).is_none() {
                    return Err(format!("app {name} column {col}: missing numeric `{key}`"));
                }
            }
            for key in ["shares", "counters"] {
                if c.get(key).and_then(Json::as_obj).is_none() {
                    return Err(format!("app {name} column {col}: missing object `{key}`"));
                }
            }
            let interrupts = c
                .get("counters")
                .and_then(|cc| cc.get("interrupts"))
                .and_then(Json::as_u64);
            if interrupts.is_none() {
                return Err(format!(
                    "app {name} column {col}: counters missing integer `interrupts`"
                ));
            }
        }
    }
    Ok(())
}

/// Every bench-trajectory row carries per-op-kind tail latency under
/// `op_latency`: `{fetch|lock|barrier: {n, p50_us, p95_us, p99_us}}`.
fn check_op_latency(row: &Json, i: usize) -> Result<(), String> {
    let ol = row
        .get("op_latency")
        .ok_or_else(|| format!("row {i}: missing `op_latency` object"))?;
    for class in ["fetch", "lock", "barrier"] {
        let c = ol
            .get(class)
            .ok_or_else(|| format!("row {i}: op_latency missing `{class}`"))?;
        if c.get("n").and_then(Json::as_u64).is_none() {
            return Err(format!("row {i}: op_latency.{class}: missing integer `n`"));
        }
        for key in ["p50_us", "p95_us", "p99_us"] {
            if c.get(key).and_then(Json::as_f64).is_none() {
                return Err(format!(
                    "row {i}: op_latency.{class}: missing numeric `{key}`"
                ));
            }
        }
    }
    Ok(())
}

fn check_fault_matrix_schema(v: &Json) -> Result<(), String> {
    let rows = v
        .get("rows")
        .and_then(Json::as_arr)
        .ok_or_else(|| "missing `rows` array".to_string())?;
    if rows.is_empty() {
        return Err("`rows` is empty".to_string());
    }
    for (i, row) in rows.iter().enumerate() {
        if row.get("column").and_then(Json::as_str).is_none() {
            return Err(format!("row {i}: missing string `column`"));
        }
        for key in ["drop_rate", "time_ms"] {
            if row.get(key).and_then(Json::as_f64).is_none() {
                return Err(format!("row {i}: missing numeric `{key}`"));
            }
        }
        for key in [
            "retransmits",
            "duplicates_suppressed",
            "injected_drops",
            "injected_dups",
            "injected_delays",
            "interrupts",
        ] {
            if row.get(key).and_then(Json::as_u64).is_none() {
                return Err(format!("row {i}: missing integer `{key}`"));
            }
        }
        if row.get("audit_clean").and_then(Json::as_bool).is_none() {
            return Err(format!("row {i}: missing boolean `audit_clean`"));
        }
        check_op_latency(row, i)?;
    }
    Ok(())
}

/// `BENCH_serving.json`: every (workload, column) cell of the
/// open-loop serving sweep, with the bench's own gates re-checked —
/// interrupt-free columns take zero host interrupts and keep merged
/// p99 under their per-column bound, the op-stream hash is identical
/// across a workload's columns, and Base's tail is never better than
/// GeNIMA's.
fn check_serving_schema(v: &Json) -> Result<(), String> {
    let rows = v
        .get("rows")
        .and_then(Json::as_arr)
        .ok_or_else(|| "missing `rows` array".to_string())?;
    if rows.is_empty() {
        return Err("`rows` is empty".to_string());
    }
    let mut hashes: std::collections::BTreeMap<&str, &str> = std::collections::BTreeMap::new();
    let mut seen: std::collections::BTreeMap<&str, std::collections::BTreeSet<&str>> =
        std::collections::BTreeMap::new();
    let mut p99s: std::collections::BTreeMap<(&str, &str), f64> = std::collections::BTreeMap::new();
    for (i, row) in rows.iter().enumerate() {
        for key in ["workload", "column", "stream_hash"] {
            if row.get(key).and_then(Json::as_str).is_none() {
                return Err(format!("row {i}: missing string `{key}`"));
            }
        }
        for key in [
            "time_ms",
            "mops_offered",
            "mops_sustained",
            "p50_us",
            "p99_us",
            "p999_us",
            "p99_bound_us",
        ] {
            if row.get(key).and_then(Json::as_f64).is_none() {
                return Err(format!("row {i}: missing numeric `{key}`"));
            }
        }
        for key in [
            "interrupts",
            "failed_ops",
            "retransmits",
            "mgmt_deliveries",
            "outage_drops",
        ] {
            if row.get(key).and_then(Json::as_u64).is_none() {
                return Err(format!("row {i}: missing integer `{key}`"));
            }
        }
        let serve = row
            .get("serve_latency")
            .ok_or_else(|| format!("row {i}: missing `serve_latency`"))?;
        let mut completed = 0u64;
        for class in ["read", "write", "walk"] {
            let c = serve
                .get(class)
                .ok_or_else(|| format!("row {i}: serve_latency missing class `{class}`"))?;
            completed += c
                .get("n")
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("row {i} class {class}: missing integer `n`"))?;
            for key in ["p50_us", "p95_us", "p99_us", "p999_us"] {
                if c.get(key).and_then(Json::as_f64).is_none() {
                    return Err(format!("row {i} class {class}: missing numeric `{key}`"));
                }
            }
        }
        if completed == 0 {
            return Err(format!("row {i}: no completed serve ops in any class"));
        }
        let workload = row.get("workload").and_then(Json::as_str).unwrap_or("");
        let column = row.get("column").and_then(Json::as_str).unwrap_or("");
        let hash = row.get("stream_hash").and_then(Json::as_str).unwrap_or("");
        if let Some(first) = hashes.get(workload) {
            if *first != hash {
                return Err(format!(
                    "row {i}: `{workload}` op-stream hash differs across columns — \
                     the workload seam leaked protocol state"
                ));
            }
        } else {
            hashes.insert(workload, hash);
        }
        if let Some(c) = COLUMNS.iter().find(|c| **c == column) {
            seen.entry(workload).or_default().insert(c);
        }
        let p99 = row.get("p99_us").and_then(Json::as_f64).unwrap_or(0.0);
        p99s.insert((workload, column), p99);
        let bound = row
            .get("p99_bound_us")
            .and_then(Json::as_f64)
            .unwrap_or(0.0);
        if column.starts_with("GeNIMA") {
            if row.get("interrupts").and_then(Json::as_u64) != Some(0) {
                return Err(format!("row {i}: host interrupts on {column} under churn"));
            }
            if bound <= 0.0 {
                return Err(format!("row {i}: {column} row carries no p99 gate"));
            }
        }
        if bound > 0.0 && p99 > bound {
            return Err(format!(
                "row {i}: {workload}/{column} p99 {p99:.0}us exceeds its {bound:.0}us gate"
            ));
        }
    }
    for (workload, columns) in &seen {
        if columns.len() != COLUMNS.len() {
            return Err(format!(
                "workload `{workload}`: only {}/{} evaluation columns present",
                columns.len(),
                COLUMNS.len()
            ));
        }
        let base = p99s.get(&(*workload, "Base")).copied().unwrap_or(0.0);
        let genima = p99s.get(&(*workload, "GeNIMA")).copied().unwrap_or(0.0);
        if base < genima {
            return Err(format!(
                "workload `{workload}`: Base p99 {base:.0}us beats GeNIMA's {genima:.0}us — \
                 no interrupt-processing tail visible"
            ));
        }
    }
    Ok(())
}

fn check_barrier_schema(v: &Json) -> Result<(), String> {
    let rows = v
        .get("rows")
        .and_then(Json::as_arr)
        .ok_or_else(|| "missing `rows` array".to_string())?;
    if rows.is_empty() {
        return Err("`rows` is empty".to_string());
    }
    for (i, row) in rows.iter().enumerate() {
        if row.get("mode").and_then(Json::as_str).is_none() {
            return Err(format!("row {i}: missing string `mode`"));
        }
        for key in ["barrier_us", "time_ms"] {
            if row.get(key).and_then(Json::as_f64).is_none() {
                return Err(format!("row {i}: missing numeric `{key}`"));
            }
        }
        for key in ["nodes", "fanout", "barriers", "manager_msgs", "interrupts"] {
            if row.get(key).and_then(Json::as_u64).is_none() {
                return Err(format!("row {i}: missing integer `{key}`"));
            }
        }
        let ni = row
            .get("ni_barrier")
            .and_then(Json::as_bool)
            .ok_or_else(|| format!("row {i}: missing boolean `ni_barrier`"))?;
        if ni && row.get("manager_msgs").and_then(Json::as_u64) != Some(0) {
            return Err(format!(
                "row {i}: NI-tree barrier reported nonzero `manager_msgs`"
            ));
        }
    }
    Ok(())
}

fn check_diff_schema(v: &Json) -> Result<(), String> {
    let rows = v
        .get("rows")
        .and_then(Json::as_arr)
        .ok_or_else(|| "missing `rows` array".to_string())?;
    if rows.is_empty() {
        return Err("`rows` is empty".to_string());
    }
    let mut sparse_seen = false;
    for (i, row) in rows.iter().enumerate() {
        let case = row
            .get("case")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("row {i}: missing string `case`"))?;
        for key in [
            "ref_ns",
            "block_ns",
            "tracked_ns",
            "speedup_block",
            "speedup_tracked",
        ] {
            if row.get(key).and_then(Json::as_f64).is_none() {
                return Err(format!("row {i}: missing numeric `{key}`"));
            }
        }
        for key in ["runs", "bytes"] {
            if row.get(key).and_then(Json::as_u64).is_none() {
                return Err(format!("row {i}: missing integer `{key}`"));
            }
        }
        if row.get("identical").and_then(Json::as_bool) != Some(true) {
            return Err(format!(
                "row {i}: `identical` must be true — the engines must be bit-identical"
            ));
        }
        if case == "sparse" {
            sparse_seen = true;
            let speedup = row
                .get("speedup_block")
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("row {i}: missing numeric `speedup_block`"))?;
            if speedup < 3.0 {
                return Err(format!(
                    "row {i}: sparse block-scan speedup {speedup:.2}x below the 3x gate"
                ));
            }
        }
    }
    if !sparse_seen {
        return Err("no `sparse` case row".to_string());
    }
    Ok(())
}

/// `BENCH_rdma.json`: the 1999-vs-2025 hardware comparison. Beyond
/// shape, this is a sanity gate on the comparison itself: every row
/// must be interrupt-free, RNIC rows must show doorbell/CQE activity
/// and beat their LANai counterpart, LANai rows must not report RNIC
/// counters.
fn check_rdma_schema(v: &Json) -> Result<(), String> {
    let rows = v
        .get("rows")
        .and_then(Json::as_arr)
        .ok_or_else(|| "missing `rows` array".to_string())?;
    if rows.is_empty() {
        return Err("`rows` is empty".to_string());
    }
    let mut rnic_rows = 0usize;
    let mut lanai_rows = 0usize;
    for (i, row) in rows.iter().enumerate() {
        for key in ["app", "column", "hw"] {
            if row.get(key).and_then(Json::as_str).is_none() {
                return Err(format!("row {i}: missing string `{key}`"));
            }
        }
        for key in ["time_ms", "speedup", "speedup_vs_1999"] {
            if row.get(key).and_then(Json::as_f64).is_none() {
                return Err(format!("row {i}: missing numeric `{key}`"));
            }
        }
        for key in ["interrupts", "doorbells", "cqes", "odp_faults"] {
            if row.get(key).and_then(Json::as_u64).is_none() {
                return Err(format!("row {i}: missing integer `{key}`"));
            }
        }
        check_op_latency(row, i)?;
        if row.get("interrupts").and_then(Json::as_u64) != Some(0) {
            return Err(format!(
                "row {i}: nonzero host interrupts — GeNIMA is interrupt-free on any hardware"
            ));
        }
        let doorbells = row.get("doorbells").and_then(Json::as_u64);
        let cqes = row.get("cqes").and_then(Json::as_u64);
        if row.get("column").and_then(Json::as_str) == Some("GeNIMA-2025") {
            rnic_rows += 1;
            if doorbells == Some(0) || cqes == Some(0) {
                return Err(format!("row {i}: RNIC row with flat doorbell/CQE counters"));
            }
            match row.get("speedup_vs_1999").and_then(Json::as_f64) {
                Some(r) if r > 1.0 => {}
                Some(r) => {
                    return Err(format!(
                        "row {i}: 2025 hardware does not beat 1999 (ratio {r:.2})"
                    ));
                }
                None => return Err(format!("row {i}: missing numeric `speedup_vs_1999`")),
            }
        } else {
            lanai_rows += 1;
            if doorbells != Some(0) || cqes != Some(0) {
                return Err(format!("row {i}: LANai row reporting RNIC counters"));
            }
        }
    }
    if rnic_rows == 0 || lanai_rows == 0 {
        return Err(format!(
            "need both profiles: {lanai_rows} LANai and {rnic_rows} RNIC rows"
        ));
    }
    Ok(())
}

/// The five attribution segments every critpath row must carry.
const SEGMENTS: &[&str] = &[
    "interrupt",
    "firmware",
    "wire",
    "host_handler",
    "queue_retry",
];

/// `BENCH_critpath.json`: per-op critical-path attribution across all
/// six columns. Beyond shape, this re-checks the bench's own gates
/// from the written report: segment totals must sum to `total_ns`
/// exactly, the GeNIMA columns must carry zero interrupt-segment time,
/// and Base must show a nonzero interrupt share.
fn check_critpath_schema(v: &Json) -> Result<(), String> {
    let rows = v
        .get("rows")
        .and_then(Json::as_arr)
        .ok_or_else(|| "missing `rows` array".to_string())?;
    if rows.is_empty() {
        return Err("`rows` is empty".to_string());
    }
    let mut seen: std::collections::BTreeSet<&str> = std::collections::BTreeSet::new();
    for (i, row) in rows.iter().enumerate() {
        for key in ["app", "column", "hw"] {
            if row.get(key).and_then(Json::as_str).is_none() {
                return Err(format!("row {i}: missing string `{key}`"));
            }
        }
        for key in ["time_ms", "speedup", "interrupt_share"] {
            if row.get(key).and_then(Json::as_f64).is_none() {
                return Err(format!("row {i}: missing numeric `{key}`"));
            }
        }
        for key in ["ops", "total_ns"] {
            if row.get(key).and_then(Json::as_u64).is_none() {
                return Err(format!("row {i}: missing integer `{key}`"));
            }
        }
        let segs = row
            .get("segments_ns")
            .ok_or_else(|| format!("row {i}: missing `segments_ns`"))?;
        let mut sum = 0u64;
        for seg in SEGMENTS {
            let ns = segs
                .get(seg)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("row {i}: segments_ns missing integer `{seg}`"))?;
            sum += ns;
        }
        if Some(sum) != row.get("total_ns").and_then(Json::as_u64) {
            return Err(format!(
                "row {i}: segment attribution does not sum to `total_ns`"
            ));
        }
        let column = row
            .get("column")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("row {i}: missing string `column`"))?;
        if let Some(c) = COLUMNS.iter().find(|c| **c == column) {
            seen.insert(c);
        }
        let interrupt_ns = segs.get("interrupt").and_then(Json::as_u64);
        if column.starts_with("GeNIMA") && interrupt_ns != Some(0) {
            return Err(format!(
                "row {i}: interrupt time on a {column} critical path"
            ));
        }
        if column == "Base" && interrupt_ns == Some(0) {
            return Err(format!(
                "row {i}: Base critical path shows zero interrupt time"
            ));
        }
        let classes = row
            .get("classes")
            .and_then(Json::as_arr)
            .ok_or_else(|| format!("row {i}: missing `classes` array"))?;
        for (j, c) in classes.iter().enumerate() {
            if c.get("class").and_then(Json::as_str).is_none() {
                return Err(format!("row {i} class {j}: missing string `class`"));
            }
            for key in ["count", "p50_ns", "p95_ns", "p99_ns"] {
                if c.get(key).and_then(Json::as_u64).is_none() {
                    return Err(format!("row {i} class {j}: missing integer `{key}`"));
                }
            }
        }
    }
    if seen.len() != COLUMNS.len() {
        return Err(format!(
            "only {}/{} evaluation columns present",
            seen.len(),
            COLUMNS.len()
        ));
    }
    Ok(())
}

fn check_mc_schema(v: &Json) -> Result<(), String> {
    let rows = v
        .get("rows")
        .and_then(Json::as_arr)
        .ok_or_else(|| "missing `rows` array".to_string())?;
    if rows.is_empty() {
        return Err("`rows` is empty".to_string());
    }
    let mut ci_rows = 0usize;
    for (i, row) in rows.iter().enumerate() {
        for key in ["litmus", "column", "tier"] {
            if row.get(key).and_then(Json::as_str).is_none() {
                return Err(format!("row {i}: missing string `{key}`"));
            }
        }
        for key in [
            "schedules",
            "sleep_pruned",
            "truncated",
            "violations",
            "distinct_outcomes",
            "steps_total",
        ] {
            if row.get(key).and_then(Json::as_u64).is_none() {
                return Err(format!("row {i}: missing integer `{key}`"));
            }
        }
        if row.get("states_per_sec").and_then(Json::as_f64).is_none() {
            return Err(format!("row {i}: missing numeric `states_per_sec`"));
        }
        if row.get("exhaustive").and_then(Json::as_bool).is_none() {
            return Err(format!("row {i}: missing boolean `exhaustive`"));
        }
        if row.get("violations").and_then(Json::as_u64) != Some(0) {
            return Err(format!("row {i}: litmus exploration found violations"));
        }
        if row.get("truncated").and_then(Json::as_u64) != Some(0) {
            return Err(format!(
                "row {i}: exploration hit the depth bound — raise max_steps"
            ));
        }
        // Every CI-corpus cell must be a completed exhaustive proof;
        // only the extended classic shapes may report bounded coverage.
        if row.get("tier").and_then(Json::as_str) == Some("ci") {
            ci_rows += 1;
            if row.get("exhaustive").and_then(Json::as_bool) != Some(true) {
                return Err(format!("row {i}: CI-corpus cell is not exhaustive"));
            }
        }
    }
    if ci_rows < 10 {
        return Err(format!(
            "only {ci_rows} CI-corpus rows — expected the full litmus × column grid"
        ));
    }
    // The DPOR-vs-naive calibration must show real pruning on a cell
    // DPOR itself exhausted.
    let calib = v
        .get("calibration")
        .ok_or_else(|| "missing `calibration` object".to_string())?;
    for key in ["dpor_schedules", "naive_schedules"] {
        if calib.get(key).and_then(Json::as_u64).is_none() {
            return Err(format!("calibration: missing integer `{key}`"));
        }
    }
    if calib.get("dpor_exhaustive").and_then(Json::as_bool) != Some(true) {
        return Err("calibration: DPOR side must be an exhaustive proof".to_string());
    }
    match calib.get("prune_ratio").and_then(Json::as_f64) {
        Some(ratio) if ratio >= 5.0 => {}
        Some(ratio) => {
            return Err(format!(
                "calibration: DPOR prune ratio {ratio:.1}x below the 5x gate"
            ));
        }
        None => return Err("calibration: missing numeric `prune_ratio`".to_string()),
    }
    let m = v
        .get("mutant")
        .ok_or_else(|| "missing `mutant` object".to_string())?;
    for key in ["name", "litmus", "column"] {
        if m.get(key).and_then(Json::as_str).is_none() {
            return Err(format!("mutant: missing string `{key}`"));
        }
    }
    if m.get("caught").and_then(Json::as_bool) != Some(true) {
        return Err("mutant: seeded bug was not caught".to_string());
    }
    if m.get("replay_ok").and_then(Json::as_bool) != Some(true) {
        return Err("mutant: counterexample failed replay verification".to_string());
    }
    let to_violation = m
        .get("schedules_to_violation")
        .and_then(Json::as_u64)
        .ok_or_else(|| "mutant: missing integer `schedules_to_violation`".to_string())?;
    if to_violation >= 10_000 {
        return Err(format!(
            "mutant: caught only after {to_violation} schedules (gate: < 10000)"
        ));
    }
    if m.get("minimized_steps").and_then(Json::as_u64).is_none() {
        return Err("mutant: missing integer `minimized_steps`".to_string());
    }
    Ok(())
}

/// The channel-key spellings a `schedule_trace` may use (the `Display`
/// forms of the proto crate's `ChanKey`).
const CHAN_KEY_PREFIXES: &[&str] = &[
    "wire:", "mem:", "fetch:", "lock:", "coll:", "atom:", "proc:", "hnd:",
];

fn valid_chan_key(s: &str) -> bool {
    CHAN_KEY_PREFIXES.iter().any(|p| s.starts_with(p)) && s.len() > s.find(':').unwrap_or(0) + 1
}

fn check_schedule_trace_schema(v: &Json) -> Result<(), String> {
    for key in ["litmus", "column", "violation"] {
        if v.get(key).and_then(Json::as_str).is_none() {
            return Err(format!("missing string `{key}`"));
        }
    }
    match v.get("mutation") {
        Some(Json::Null) | Some(Json::Str(_)) => {}
        Some(_) => return Err("`mutation` must be a string or null".to_string()),
        None => return Err("missing `mutation`".to_string()),
    }
    let prefix = v
        .get("prefix")
        .and_then(Json::as_arr)
        .ok_or_else(|| "missing `prefix` array".to_string())?;
    for (i, k) in prefix.iter().enumerate() {
        let s = k
            .as_str()
            .ok_or_else(|| format!("prefix[{i}]: must be a string channel key"))?;
        if !valid_chan_key(s) {
            return Err(format!("prefix[{i}]: `{s}` is not a channel key"));
        }
    }
    let steps = v
        .get("steps")
        .and_then(Json::as_arr)
        .ok_or_else(|| "missing `steps` array".to_string())?;
    if steps.len() < prefix.len() {
        return Err("`steps` must cover at least the forced prefix".to_string());
    }
    for (i, s) in steps.iter().enumerate() {
        let key = s
            .get("key")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("steps[{i}]: missing string `key`"))?;
        if !valid_chan_key(key) {
            return Err(format!("steps[{i}]: `{key}` is not a channel key"));
        }
        if s.get("label").and_then(Json::as_str).is_none() {
            return Err(format!("steps[{i}]: missing string `label`"));
        }
    }
    Ok(())
}

/// Dispatches a parsed bench report to the matching schema check.
fn check_schema(v: &Json) -> Result<&'static str, String> {
    if v.get("kind").and_then(Json::as_str) == Some("schedule_trace") {
        return check_schedule_trace_schema(v).map(|()| "schedule_trace");
    }
    if v.get("seed").and_then(Json::as_u64).is_none() {
        return Err("missing integer `seed`".to_string());
    }
    match v.get("bench").and_then(Json::as_str) {
        Some("breakdowns") => check_breakdowns_schema(v).map(|()| "breakdowns"),
        Some("fault_matrix") => check_fault_matrix_schema(v).map(|()| "fault_matrix"),
        Some("serving") => check_serving_schema(v).map(|()| "serving"),
        Some("barrier") => check_barrier_schema(v).map(|()| "barrier"),
        Some("diff") => check_diff_schema(v).map(|()| "diff"),
        Some("mc") => check_mc_schema(v).map(|()| "mc"),
        Some("rdma") => check_rdma_schema(v).map(|()| "rdma"),
        Some("critpath") => check_critpath_schema(v).map(|()| "critpath"),
        Some(other) => Err(format!("unknown bench kind `{other}`")),
        None => Err("missing string `bench`".to_string()),
    }
}

/// Renders one `BENCH_critpath.json` as the per-(app, column) segment
/// breakdown table: microseconds per attribution segment plus the
/// interrupt share of the summed critical paths.
fn critpath_grid(v: &Json) -> Result<Grid, String> {
    check_critpath_schema(v)?;
    let rows = v
        .get("rows")
        .and_then(Json::as_arr)
        .ok_or_else(|| "missing `rows` array".to_string())?;
    let mut grid = Grid::new(vec![
        "app",
        "column",
        "ops",
        "interrupt(us)",
        "firmware(us)",
        "wire(us)",
        "host(us)",
        "queue(us)",
        "intr%",
    ]);
    for row in rows {
        let cell = |key: &str| {
            row.get(key)
                .and_then(Json::as_str)
                .unwrap_or_default()
                .to_string()
        };
        let segs = row
            .get("segments_ns")
            .ok_or_else(|| "missing `segments_ns`".to_string())?;
        let us = |seg: &str| {
            let ns = segs.get(seg).and_then(Json::as_u64).unwrap_or_default();
            format!("{:.1}", ns as f64 / 1e3)
        };
        let share = row
            .get("interrupt_share")
            .and_then(Json::as_f64)
            .unwrap_or_default();
        grid.row(vec![
            cell("app"),
            cell("column"),
            row.get("ops")
                .and_then(Json::as_u64)
                .unwrap_or_default()
                .to_string(),
            us("interrupt"),
            us("firmware"),
            us("wire"),
            us("host_handler"),
            us("queue_retry"),
            format!("{:.1}%", share * 100.0),
        ]);
    }
    Ok(grid)
}

/// `xtask prof-summary <BENCH_critpath.json>`: validates the report
/// and prints the critical-path breakdown table.
fn run_prof_summary(path: &str) -> ExitCode {
    match load_json(path).and_then(|v| critpath_grid(&v).map(|g| g.render())) {
        Ok(table) => {
            println!("{table}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("xtask prof-summary: {path}: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run_obs_schema(paths: &[String]) -> ExitCode {
    if paths.is_empty() {
        eprintln!("usage: xtask obs-schema <file>...");
        return ExitCode::FAILURE;
    }
    let mut failures = 0u32;
    for path in paths {
        match load_json(path).and_then(|v| check_schema(&v)) {
            Ok(kind) => println!("xtask obs-schema: {path}: valid {kind} report"),
            Err(e) => {
                eprintln!("xtask obs-schema: {path}: {e}");
                failures += 1;
            }
        }
    }
    if failures == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Runs clippy over the workspace with warnings denied, applying the
/// pinned [`CLIPPY_ALLOW`] list.
fn run_clippy() -> ExitCode {
    let mut cmd = std::process::Command::new("cargo");
    cmd.args([
        "clippy",
        "--workspace",
        "--all-targets",
        "--",
        "-D",
        "warnings",
    ]);
    for (lint, reason) in CLIPPY_ALLOW {
        println!("xtask clippy: allowing {lint} ({reason})");
        cmd.args(["-A", lint]);
    }
    cmd.current_dir(repo_root());
    match cmd.status() {
        Ok(s) if s.success() => {
            println!("xtask clippy: workspace clean (-D warnings)");
            ExitCode::SUCCESS
        }
        Ok(_) => ExitCode::FAILURE,
        Err(e) => {
            eprintln!("xtask clippy: cannot run cargo: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage: xtask lint | clippy | obs-summary <file> [top] | \
                     obs-schema <file>... | prof-summary <file>";

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("lint") => run_lint(),
        Some("clippy") => run_clippy(),
        Some("obs-summary") => {
            let path = match args.next() {
                Some(p) => p,
                None => {
                    eprintln!("usage: xtask obs-summary <file> [top]");
                    return ExitCode::FAILURE;
                }
            };
            let top = args.next().and_then(|t| t.parse().ok()).unwrap_or(10);
            run_obs_summary(&path, top)
        }
        Some("obs-schema") => run_obs_schema(&args.collect::<Vec<_>>()),
        Some("prof-summary") => match args.next() {
            Some(path) => run_prof_summary(&path),
            None => {
                eprintln!("usage: xtask prof-summary <BENCH_critpath.json>");
                ExitCode::FAILURE
            }
        },
        Some(other) => {
            eprintln!("xtask: unknown command `{other}`\n{USAGE}");
            ExitCode::FAILURE
        }
        None => {
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flags_wildcard_arms() {
        let src = "match m {\n    A => 1,\n    _ => 0,\n}\n";
        let f = lint_source("x.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 3);
        assert!(f[0].rule.contains("wildcard"));
    }

    #[test]
    fn flags_bare_unwrap() {
        let src = "let v = map.get(&k).unwrap();\n";
        let f = lint_source("x.rs", src);
        assert_eq!(f.len(), 1);
        assert!(f[0].rule.contains("unwrap"));
    }

    #[test]
    fn expect_is_allowed() {
        let src = "let v = map.get(&k).expect(\"seeded at init\");\n";
        assert!(lint_source("x.rs", src).is_empty());
    }

    #[test]
    fn waivers_suppress_findings() {
        let src = "    _ => {} // lint: allow-wildcard\n\
                   let v = o.unwrap(); // lint: allow-unwrap\n";
        assert!(lint_source("x.rs", src).is_empty());
    }

    #[test]
    fn comments_are_ignored() {
        let src = "// a doc note about .unwrap() and _ => arms\n\
                   /// same in doc comments: .unwrap()\n";
        assert!(lint_source("x.rs", src).is_empty());
    }

    #[test]
    fn test_modules_are_exempt() {
        let src = "fn f() {}\n#[cfg(test)]\nmod tests {\n    fn g() { o.unwrap(); }\n    // _ => also fine here\n}\n";
        assert!(lint_source("x.rs", src).is_empty());
    }

    #[test]
    fn trailing_comment_does_not_hide_code() {
        let src = "let v = o.unwrap(); // grab it\n";
        assert_eq!(lint_source("x.rs", src).len(), 1);
    }

    #[test]
    fn patterns_inside_string_literals_are_ignored() {
        let src = "let msg = \"fallback _ => arm calls .unwrap()\";\n\
                   eprintln!(\"usage: _ => or .unwrap()\");\n";
        assert!(lint_source("x.rs", src).is_empty());
    }

    #[test]
    fn patterns_inside_block_comments_are_ignored() {
        let src = "/* a note: _ => arms and .unwrap() are banned\n\
                   spanning lines /* nested: .unwrap() */ still out */\n\
                   fn f() {}\n";
        assert!(lint_source("x.rs", src).is_empty());
    }

    #[test]
    fn patterns_inside_raw_strings_are_ignored() {
        let src = "let re = r#\"match x { _ => y.unwrap() }\"#;\n\
                   let b = br\"_ => .unwrap()\";\n";
        assert!(lint_source("x.rs", src).is_empty());
    }

    #[test]
    fn code_after_string_on_same_line_is_still_linted() {
        let src = "let v = o.expect(\"_ => in message\").field.unwrap();\n";
        let f = lint_source("x.rs", src);
        assert_eq!(f.len(), 1);
        assert!(f[0].rule.contains("unwrap"));
    }

    #[test]
    fn stripping_preserves_line_numbers() {
        let src = "/* one\n   two\n   three */\nmatch m {\n    _ => 0,\n}\n";
        let f = lint_source("x.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 5);
    }

    #[test]
    fn multiline_strings_keep_line_structure() {
        let src = "let s = \"first _ =>\n  second .unwrap()\n  third\";\nlet v = o.unwrap();\n";
        let f = lint_source("x.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 4);
    }

    #[test]
    fn char_literals_and_lifetimes_survive() {
        // A quote char literal must not open a string that swallows
        // the rest of the file, and lifetimes must not be taken for
        // char literals.
        let src = "fn f<'a>(x: &'a str) -> char { '\"' }\nlet v = o.unwrap();\n";
        let f = lint_source("x.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 2);
    }

    #[test]
    fn cfg_test_inside_string_does_not_end_linting() {
        let src = "let s = \"#[cfg(test)]\";\nlet v = o.unwrap();\n";
        assert_eq!(lint_source("x.rs", src).len(), 1);
    }

    fn minimal_breakdowns_json() -> String {
        let cols: Vec<String> = COLUMNS
            .iter()
            .map(|c| {
                format!(
                    "\"{c}\":{{\"parallel_ms\":1.0,\"speedup\":2.0,\
                     \"shares\":{{}},\"counters\":{{\"interrupts\":0}}}}"
                )
            })
            .collect();
        format!(
            "{{\"bench\":\"breakdowns\",\"seed\":42,\"apps\":{{\"LU\":{{\
             \"sequential_ms\":9.0,\"columns\":{{{}}}}}}}}}",
            cols.join(",")
        )
    }

    #[test]
    fn breakdowns_schema_accepts_all_six_columns() {
        let v = Json::parse(&minimal_breakdowns_json()).expect("fixture parses");
        assert_eq!(check_schema(&v), Ok("breakdowns"));
    }

    #[test]
    fn breakdowns_schema_rejects_missing_column() {
        let text = minimal_breakdowns_json().replace("\"GeNIMA\"", "\"GeNIMA-typo\"");
        let v = Json::parse(&text).expect("fixture parses");
        let err = check_schema(&v).expect_err("must flag the missing column");
        assert!(err.contains("GeNIMA"), "{err}");
    }

    /// Per-op-kind tail-latency fragment every trajectory row carries.
    const OP_LATENCY_FRAG: &str = "\"op_latency\":{\
         \"fetch\":{\"n\":10,\"p50_us\":4.0,\"p95_us\":9.0,\"p99_us\":12.0},\
         \"lock\":{\"n\":5,\"p50_us\":2.0,\"p95_us\":3.0,\"p99_us\":3.5},\
         \"barrier\":{\"n\":8,\"p50_us\":20.0,\"p95_us\":40.0,\"p99_us\":55.0}}";

    #[test]
    fn fault_matrix_schema_round_trips() {
        let row = format!(
            "{{\"drop_rate\":0.05,\"column\":\"Base\",\"time_ms\":3.5,\
             \"retransmits\":2,\"duplicates_suppressed\":1,\
             \"injected_drops\":4,\"injected_dups\":1,\"injected_delays\":2,\
             \"interrupts\":0,\"audit_clean\":true,{OP_LATENCY_FRAG}}}"
        );
        let text = format!("{{\"bench\":\"fault_matrix\",\"seed\":7,\"rows\":[{row}]}}");
        let v = Json::parse(&text).expect("fixture parses");
        assert_eq!(check_schema(&v), Ok("fault_matrix"));
        let broken = text.replace("\"audit_clean\":true", "\"audit_clean\":3");
        let v = Json::parse(&broken).expect("fixture parses");
        assert!(check_schema(&v).is_err());
        // Tail latency is part of the trajectory contract.
        let no_tail = text.replace("\"op_latency\"", "\"op_lat\"");
        let v = Json::parse(&no_tail).expect("fixture parses");
        let err = check_schema(&v).expect_err("rows must carry op_latency");
        assert!(err.contains("op_latency"), "{err}");
        let no_p99 = text.replacen("\"p99_us\":12.0", "\"p99\":12.0", 1);
        let v = Json::parse(&no_p99).expect("fixture parses");
        let err = check_schema(&v).expect_err("classes must carry p99_us");
        assert!(err.contains("p99_us"), "{err}");
    }

    fn minimal_serving_json() -> String {
        let serve = "\"serve_latency\":{\
             \"read\":{\"n\":90,\"p50_us\":40.0,\"p95_us\":300.0,\"p99_us\":900.0,\"p999_us\":2000.0},\
             \"write\":{\"n\":10,\"p50_us\":60.0,\"p95_us\":400.0,\"p99_us\":1100.0,\"p999_us\":2600.0},\
             \"walk\":{\"n\":0,\"p50_us\":0.0,\"p95_us\":0.0,\"p99_us\":0.0,\"p999_us\":0.0}}";
        let rows: Vec<String> = COLUMNS
            .iter()
            .map(|column| {
                let interrupt_free = column.starts_with("GeNIMA");
                let (p99, bound, intr) = if interrupt_free {
                    (8389.0, 33554.0, 0)
                } else {
                    (67109.0, 0.0, 900)
                };
                format!(
                    "{{\"workload\":\"kv\",\"column\":\"{column}\",\"time_ms\":55.0,\
                     \"mops_offered\":0.02,\"mops_sustained\":0.012,\
                     \"p50_us\":500.0,\"p99_us\":{p99:.1},\"p999_us\":{p99:.1},\
                     \"p99_bound_us\":{bound:.1},\"interrupts\":{intr},\
                     \"failed_ops\":2,\"retransmits\":300,\"mgmt_deliveries\":1,\
                     \"outage_drops\":80,\"stream_hash\":\"00c0ffee00c0ffee\",{serve}}}"
                )
            })
            .collect();
        format!(
            "{{\"bench\":\"serving\",\"seed\":7,\"nodes\":4,\"ops\":800,\
             \"horizon_ms\":40.0,\"rows\":[{}]}}",
            rows.join(",")
        )
    }

    #[test]
    fn serving_schema_round_trips() {
        let v = Json::parse(&minimal_serving_json()).expect("fixture parses");
        assert_eq!(check_schema(&v), Ok("serving"));
    }

    #[test]
    fn serving_schema_gates_the_tails() {
        let base = minimal_serving_json();
        for (broken, needle) in [
            // An interrupt-free column taking host interrupts.
            (
                base.replace(
                    "\"p99_bound_us\":33554.0,\"interrupts\":0",
                    "\"p99_bound_us\":33554.0,\"interrupts\":5",
                ),
                "interrupt",
            ),
            // A gated row whose p99 breaks its own bound.
            (
                base.replace("\"p99_us\":8389.0", "\"p99_us\":67109.0"),
                "gate",
            ),
            // A column whose op stream drifted from its siblings.
            (
                base.replacen("00c0ffee00c0ffee", "deadbeefdeadbeef", 1),
                "hash",
            ),
            // Per-class tails are part of the contract.
            (
                base.replace("\"p999_us\":2000.0", "\"p999\":2000.0"),
                "p999_us",
            ),
            // A report missing one of the six evaluation columns.
            (
                base.replace("\"column\":\"DW\"", "\"column\":\"DWX\""),
                "columns present",
            ),
        ] {
            let v = Json::parse(&broken).expect("fixture parses");
            let err = check_schema(&v).expect_err("must fail the serving gate");
            assert!(err.contains(needle), "`{err}` misses `{needle}`");
        }
        // Base beating GeNIMA means the interrupt tail vanished.
        let inverted = base.replace(
            "\"p50_us\":500.0,\"p99_us\":67109.0",
            "\"p50_us\":500.0,\"p99_us\":4000.0",
        );
        let v = Json::parse(&inverted).expect("fixture parses");
        let err = check_schema(&v).expect_err("Base must not beat GeNIMA");
        assert!(err.contains("tail"), "{err}");
    }

    fn minimal_rdma_json() -> String {
        let lanai = format!(
            "{{\"app\":\"FFT\",\"column\":\"GeNIMA\",\"hw\":\"LANai-1999\",\
             \"time_ms\":10.0,\"speedup\":5.0,\"speedup_vs_1999\":1.0,\
             \"interrupts\":0,\"doorbells\":0,\"cqes\":0,\"odp_faults\":0,\
             {OP_LATENCY_FRAG}}}"
        );
        let rnic = format!(
            "{{\"app\":\"FFT\",\"column\":\"GeNIMA-2025\",\"hw\":\"RNIC-2025\",\
             \"time_ms\":6.0,\"speedup\":8.3,\"speedup_vs_1999\":1.7,\
             \"interrupts\":0,\"doorbells\":900,\"cqes\":1800,\"odp_faults\":64,\
             {OP_LATENCY_FRAG}}}"
        );
        format!("{{\"bench\":\"rdma\",\"seed\":7,\"rows\":[{lanai},{rnic}]}}")
    }

    #[test]
    fn rdma_schema_round_trips() {
        let v = Json::parse(&minimal_rdma_json()).expect("fixture parses");
        assert_eq!(check_schema(&v), Ok("rdma"));
    }

    #[test]
    fn rdma_schema_gates_the_comparison() {
        let base = minimal_rdma_json();
        for (broken, needle) in [
            (
                base.replace(
                    "\"interrupts\":0,\"doorbells\":900",
                    "\"interrupts\":3,\"doorbells\":900",
                ),
                "interrupt",
            ),
            (
                base.replace(
                    "\"doorbells\":900,\"cqes\":1800",
                    "\"doorbells\":0,\"cqes\":1800",
                ),
                "flat",
            ),
            (
                base.replace("\"speedup_vs_1999\":1.7", "\"speedup_vs_1999\":0.8"),
                "beat",
            ),
            (
                base.replace("\"doorbells\":0,\"cqes\":0", "\"doorbells\":5,\"cqes\":0"),
                "LANai",
            ),
        ] {
            let v = Json::parse(&broken).expect("fixture parses");
            let err = check_schema(&v).expect_err("must fail the gate");
            assert!(err.contains(needle), "{err} should mention {needle}");
        }
        // A report with only one profile is not a comparison.
        let one_sided =
            minimal_rdma_json().replace("\"column\":\"GeNIMA\",", "\"column\":\"GeNIMA-2025\",");
        let v = Json::parse(&one_sided).expect("fixture parses");
        assert!(check_schema(&v).is_err());
    }

    #[test]
    fn barrier_schema_round_trips() {
        let row = "{\"nodes\":16,\"mode\":\"ni-tree-4\",\"fanout\":4,\
                   \"barrier_us\":268.9,\"time_ms\":3.2,\"barriers\":12,\
                   \"manager_msgs\":0,\"interrupts\":0,\"ni_barrier\":true}";
        let text = format!("{{\"bench\":\"barrier\",\"seed\":7,\"iters\":12,\"rows\":[{row}]}}");
        let v = Json::parse(&text).expect("fixture parses");
        assert_eq!(check_schema(&v), Ok("barrier"));
        let broken = text.replace("\"manager_msgs\":0", "\"manager_msgs\":5");
        let v = Json::parse(&broken).expect("fixture parses");
        let err = check_schema(&v).expect_err("NI rows must carry zero manager messages");
        assert!(err.contains("manager_msgs"), "{err}");
    }

    #[test]
    fn diff_schema_round_trips() {
        let row = "{\"case\":\"sparse\",\"runs\":8,\"bytes\":48,\
                   \"ref_ns\":1500.0,\"block_ns\":250.0,\"tracked_ns\":60.0,\
                   \"speedup_block\":6.0,\"speedup_tracked\":25.0,\"identical\":true}";
        let text = format!("{{\"bench\":\"diff\",\"seed\":7,\"iters\":4000,\"rows\":[{row}]}}");
        let v = Json::parse(&text).expect("fixture parses");
        assert_eq!(check_schema(&v), Ok("diff"));
        let slow = text.replace("\"speedup_block\":6.0", "\"speedup_block\":1.4");
        let v = Json::parse(&slow).expect("fixture parses");
        let err = check_schema(&v).expect_err("sparse speedup below 3x must fail");
        assert!(err.contains("gate"), "{err}");
        let wrong = text.replace("\"identical\":true", "\"identical\":false");
        let v = Json::parse(&wrong).expect("fixture parses");
        let err = check_schema(&v).expect_err("non-identical output must fail");
        assert!(err.contains("identical"), "{err}");
    }

    fn minimal_critpath_json() -> String {
        let row = |column: &str, intr: u64| {
            format!(
                "{{\"app\":\"FFT\",\"column\":\"{column}\",\"hw\":\"LANai-1999\",\
                 \"time_ms\":4.2,\"speedup\":5.0,\"ops\":120,\"total_ns\":{},\
                 \"segments_ns\":{{\"interrupt\":{intr},\"firmware\":200,\"wire\":300,\
                 \"host_handler\":100,\"queue_retry\":400}},\
                 \"interrupt_share\":0.1,\
                 \"classes\":[{{\"class\":\"fetch\",\"count\":80,\
                 \"p50_ns\":900,\"p95_ns\":2100,\"p99_ns\":3000}}]}}",
                intr + 1000
            )
        };
        let rows: Vec<String> = COLUMNS
            .iter()
            .map(|c| row(c, if c.starts_with("GeNIMA") { 0 } else { 50 }))
            .collect();
        format!(
            "{{\"bench\":\"critpath\",\"seed\":7,\"rows\":[{}]}}",
            rows.join(",")
        )
    }

    #[test]
    fn critpath_schema_round_trips() {
        let v = Json::parse(&minimal_critpath_json()).expect("fixture parses");
        assert_eq!(check_schema(&v), Ok("critpath"));
    }

    #[test]
    fn critpath_schema_gates_attribution_and_interrupts() {
        let base = minimal_critpath_json();
        for (broken, needle) in [
            // Segment sums must reproduce total_ns exactly.
            (
                base.replacen("\"queue_retry\":400", "\"queue_retry\":401", 1),
                "sum",
            ),
            // A GeNIMA row with interrupt time fails the thesis gate.
            (
                base.replace(
                    "\"column\":\"GeNIMA\",\"hw\":\"LANai-1999\",\
                     \"time_ms\":4.2,\"speedup\":5.0,\"ops\":120,\"total_ns\":1000,\
                     \"segments_ns\":{\"interrupt\":0",
                    "\"column\":\"GeNIMA\",\"hw\":\"LANai-1999\",\
                     \"time_ms\":4.2,\"speedup\":5.0,\"ops\":120,\"total_ns\":1005,\
                     \"segments_ns\":{\"interrupt\":5",
                ),
                "GeNIMA",
            ),
            // A Base row with zero interrupt time is equally wrong.
            (
                base.replacen("\"interrupt\":50", "\"interrupt\":0", 1)
                    .replacen("\"total_ns\":1050", "\"total_ns\":1000", 1),
                "Base",
            ),
        ] {
            let v = Json::parse(&broken).expect("fixture parses");
            let err = check_schema(&v).expect_err("must fail the gate");
            assert!(err.contains(needle), "{err} should mention {needle}");
        }
        // Dropping a column breaks the six-column requirement.
        let missing = base.replace("\"column\":\"DW\",", "\"column\":\"DW-typo\",");
        let v = Json::parse(&missing).expect("fixture parses");
        let err = check_schema(&v).expect_err("must require all six columns");
        assert!(err.contains("columns"), "{err}");
    }

    #[test]
    fn critpath_grid_renders_every_row() {
        let v = Json::parse(&minimal_critpath_json()).expect("fixture parses");
        let table = critpath_grid(&v).expect("valid report").render();
        for col in COLUMNS {
            assert!(table.contains(col), "missing {col} in:\n{table}");
        }
        assert!(table.contains("intr%"));
    }

    #[test]
    fn schema_rejects_unknown_kind() {
        let v = Json::parse("{\"bench\":\"mystery\",\"seed\":1}").expect("fixture parses");
        assert!(check_schema(&v).is_err());
    }

    fn minimal_mc_json() -> String {
        let row = |litmus: &str, column: &str, tier: &str| {
            format!(
                "{{\"litmus\":\"{litmus}\",\"column\":\"{column}\",\"tier\":\"{tier}\",\
                 \"schedules\":100,\
                 \"sleep_pruned\":40,\"truncated\":0,\"violations\":0,\
                 \"distinct_outcomes\":2,\"steps_total\":5000,\
                 \"states_per_sec\":12000.0,\"exhaustive\":true}}"
            )
        };
        let ci: Vec<String> = ["mp", "lost-update", "mono", "mp-bar", "barrier-epoch"]
            .iter()
            .flat_map(|l| ["Base", "GeNIMA"].iter().map(|c| row(l, c, "ci")))
            .collect();
        format!(
            "{{\"bench\":\"mc\",\"seed\":1999,\"rows\":[{},{}],\
             \"calibration\":{{\"litmus\":\"lock-handoff\",\"column\":\"Base\",\
             \"dpor_schedules\":800000,\"dpor_exhaustive\":true,\
             \"naive_schedules\":4000000,\"naive_capped\":true,\"prune_ratio\":5.0}},\
             \"mutant\":{{\"name\":\"reorder-write-notice\",\"litmus\":\"mp\",\
             \"column\":\"GeNIMA\",\"caught\":true,\"replay_ok\":true,\
             \"schedules_to_violation\":180,\"minimized_steps\":32}}}}",
            ci.join(","),
            row("lock-handoff", "Base", "extended"),
        )
    }

    #[test]
    fn mc_schema_round_trips() {
        let v = Json::parse(&minimal_mc_json()).expect("fixture parses");
        assert_eq!(check_schema(&v), Ok("mc"));
    }

    #[test]
    fn mc_schema_gates_violations_pruning_and_mutant() {
        let base = minimal_mc_json();
        for (broken, needle) in [
            (
                base.replacen("\"violations\":0", "\"violations\":1", 1),
                "violation",
            ),
            (
                base.replacen("\"truncated\":0", "\"truncated\":3", 1),
                "depth bound",
            ),
            (
                base.replace("\"prune_ratio\":5.0", "\"prune_ratio\":2.0"),
                "5x gate",
            ),
            (
                base.replace("\"dpor_exhaustive\":true", "\"dpor_exhaustive\":false"),
                "exhaustive proof",
            ),
            (
                base.replacen("\"exhaustive\":true", "\"exhaustive\":false", 1),
                "not exhaustive",
            ),
            (
                base.replace("\"caught\":true", "\"caught\":false"),
                "not caught",
            ),
            (
                base.replace("\"replay_ok\":true", "\"replay_ok\":false"),
                "replay",
            ),
            (
                base.replace(
                    "\"schedules_to_violation\":180",
                    "\"schedules_to_violation\":20000",
                ),
                "10000",
            ),
        ] {
            let v = Json::parse(&broken).expect("fixture parses");
            let err = check_schema(&v).expect_err("must fail the gate");
            assert!(err.contains(needle), "{err} should mention {needle}");
        }
        // Dropping the calibration object entirely must also fail.
        let no_cal = base.replace("\"calibration\"", "\"calibration_gone\"");
        let v = Json::parse(&no_cal).expect("fixture parses");
        assert!(check_schema(&v).is_err());
    }

    fn minimal_trace_json() -> String {
        "{\"kind\":\"schedule_trace\",\"litmus\":\"mp\",\"column\":\"GeNIMA\",\
         \"mutation\":\"reorder-write-notice\",\"violation\":\"audit: stale acquire\",\
         \"prefix\":[\"proc:0\",\"wire:0>1\"],\
         \"steps\":[{\"key\":\"proc:0\",\"label\":\"resume p0\"},\
                    {\"key\":\"wire:0>1\",\"label\":\"pkt\"},\
                    {\"key\":\"mem:1<0\",\"label\":\"deposit\"}]}"
            .to_string()
    }

    #[test]
    fn schedule_trace_schema_round_trips() {
        let v = Json::parse(&minimal_trace_json()).expect("fixture parses");
        assert_eq!(check_schema(&v), Ok("schedule_trace"));
    }

    #[test]
    fn schedule_trace_schema_rejects_bad_keys_and_short_steps() {
        let base = minimal_trace_json();
        let bad_key = base.replace("\"proc:0\",\"wire:0>1\"", "\"proc:0\",\"bogus:1\"");
        let v = Json::parse(&bad_key).expect("fixture parses");
        assert!(check_schema(&v)
            .expect_err("bad key")
            .contains("channel key"));
        // Steps shorter than the forced prefix cannot replay it.
        let short = base.replace(
            ",{\"key\":\"wire:0>1\",\"label\":\"pkt\"},\
             {\"key\":\"mem:1<0\",\"label\":\"deposit\"}",
            "",
        );
        let v = Json::parse(&short).expect("fixture parses");
        assert!(check_schema(&v).is_err());
    }

    #[test]
    fn real_protocol_files_are_clean() {
        let root = repo_root();
        for rel in PROTOCOL_PATHS {
            let src = std::fs::read_to_string(root.join(rel)).expect(rel);
            let f = lint_source(rel, &src);
            assert!(f.is_empty(), "{rel}: {f:?}");
        }
    }
}
