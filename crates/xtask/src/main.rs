//! Repo automation. `cargo run -p xtask -- lint` enforces two rules
//! on the protocol hot paths (the NI communication layer and the SVM
//! protocol engines):
//!
//! 1. **No wildcard `_ =>` arms.** Protocol message and upcall enums
//!    grow; a wildcard arm silently swallows a new variant instead of
//!    failing the build where the handler must be written.
//! 2. **No bare `.unwrap()`.** Protocol code runs inside the fault and
//!    sync engines where a panic wedges the whole simulated node;
//!    fallible lookups must surface a typed error (`.expect(..)` with
//!    a stated invariant is allowed).
//!
//! Both rules apply only to non-test code: everything before the first
//! `#[cfg(test)]` in each file. A finding can be waived in place with
//! a trailing `// lint: allow-wildcard` or `// lint: allow-unwrap`
//! comment on the offending line.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Files the lint gate covers, relative to the repo root.
const PROTOCOL_PATHS: &[&str] = &[
    "crates/nic/src/comm.rs",
    "crates/proto/src/system/mod.rs",
    "crates/proto/src/system/fault.rs",
    "crates/proto/src/system/sync.rs",
    "crates/fault/src/inject.rs",
    "crates/fault/src/plan.rs",
];

/// One rule violation at a source line.
#[derive(Debug, PartialEq, Eq)]
struct Finding {
    file: String,
    line: usize,
    rule: &'static str,
    text: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: {}\n    {}",
            self.file,
            self.line,
            self.rule,
            self.text.trim()
        )
    }
}

/// Strips a line down to the part the rules apply to: nothing for
/// comment-only lines, and everything before a trailing `//` comment
/// otherwise. This is a lexical approximation (no string-literal
/// awareness), which is fine for the narrow patterns we match.
fn code_part(line: &str) -> &str {
    let trimmed = line.trim_start();
    if trimmed.starts_with("//") {
        return "";
    }
    match line.find("//") {
        Some(pos) => &line[..pos],
        None => line,
    }
}

/// Returns `true` when the line carries the given waiver comment.
fn waived(line: &str, waiver: &str) -> bool {
    line.contains(waiver)
}

/// Lints one file's contents, reporting findings under `name`.
fn lint_source(name: &str, source: &str) -> Vec<Finding> {
    let mut findings = Vec::new();
    for (i, line) in source.lines().enumerate() {
        // The first `#[cfg(test)]` starts the test module; everything
        // after it is exercised only by the test harness.
        if line.trim_start().starts_with("#[cfg(test)]") {
            break;
        }
        let code = code_part(line);
        if code.contains("_ =>") && !waived(line, "lint: allow-wildcard") {
            findings.push(Finding {
                file: name.to_string(),
                line: i + 1,
                rule: "wildcard `_ =>` arm in protocol code",
                text: line.to_string(),
            });
        }
        if code.contains(".unwrap()") && !waived(line, "lint: allow-unwrap") {
            findings.push(Finding {
                file: name.to_string(),
                line: i + 1,
                rule: "bare `.unwrap()` in protocol code",
                text: line.to_string(),
            });
        }
    }
    findings
}

/// The workspace root, two levels above this crate's manifest.
fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..")
        .canonicalize()
        .expect("xtask lives two levels below the workspace root")
}

fn run_lint() -> ExitCode {
    let root = repo_root();
    let mut findings = Vec::new();
    for rel in PROTOCOL_PATHS {
        let path = root.join(rel);
        let source = match std::fs::read_to_string(&path) {
            Ok(s) => s,
            Err(err) => {
                eprintln!("xtask lint: cannot read {}: {err}", path.display());
                return ExitCode::FAILURE;
            }
        };
        findings.extend(lint_source(rel, &source));
    }
    if findings.is_empty() {
        println!("xtask lint: {} protocol files clean", PROTOCOL_PATHS.len());
        ExitCode::SUCCESS
    } else {
        for f in &findings {
            eprintln!("{f}");
        }
        eprintln!("xtask lint: {} finding(s)", findings.len());
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("lint") => run_lint(),
        Some(other) => {
            eprintln!("xtask: unknown command `{other}`\nusage: xtask lint");
            ExitCode::FAILURE
        }
        None => {
            eprintln!("usage: xtask lint");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flags_wildcard_arms() {
        let src = "match m {\n    A => 1,\n    _ => 0,\n}\n";
        let f = lint_source("x.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 3);
        assert!(f[0].rule.contains("wildcard"));
    }

    #[test]
    fn flags_bare_unwrap() {
        let src = "let v = map.get(&k).unwrap();\n";
        let f = lint_source("x.rs", src);
        assert_eq!(f.len(), 1);
        assert!(f[0].rule.contains("unwrap"));
    }

    #[test]
    fn expect_is_allowed() {
        let src = "let v = map.get(&k).expect(\"seeded at init\");\n";
        assert!(lint_source("x.rs", src).is_empty());
    }

    #[test]
    fn waivers_suppress_findings() {
        let src = "    _ => {} // lint: allow-wildcard\n\
                   let v = o.unwrap(); // lint: allow-unwrap\n";
        assert!(lint_source("x.rs", src).is_empty());
    }

    #[test]
    fn comments_are_ignored() {
        let src = "// a doc note about .unwrap() and _ => arms\n\
                   /// same in doc comments: .unwrap()\n";
        assert!(lint_source("x.rs", src).is_empty());
    }

    #[test]
    fn test_modules_are_exempt() {
        let src = "fn f() {}\n#[cfg(test)]\nmod tests {\n    fn g() { o.unwrap(); }\n    // _ => also fine here\n}\n";
        assert!(lint_source("x.rs", src).is_empty());
    }

    #[test]
    fn trailing_comment_does_not_hide_code() {
        let src = "let v = o.unwrap(); // grab it\n";
        assert_eq!(lint_source("x.rs", src).len(), 1);
    }

    #[test]
    fn real_protocol_files_are_clean() {
        let root = repo_root();
        for rel in PROTOCOL_PATHS {
            let src = std::fs::read_to_string(root.join(rel)).expect(rel);
            let f = lint_source(rel, &src);
            assert!(f.is_empty(), "{rel}: {f:?}");
        }
    }
}
