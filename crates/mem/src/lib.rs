//! Node memory system for the SVM protocols.
//!
//! Provides the mechanisms the paper's protocols are built from:
//!
//! * 4 KB shared **pages** with real byte contents ([`Page`]),
//! * **twinning and diffing** ([`Diff`]) — the classic multiple-writer
//!   solution: before the first write in an interval the page is
//!   copied (the *twin*); at a release the page is compared with its
//!   twin — in 32-byte blocks with word refinement, or only over
//!   the tracked dirty ranges — and each contiguous run of modified
//!   words is propagated to the home copy,
//! * **pooled page buffers** ([`PagePool`]) — a free list of 4 KB
//!   buffers so twinning, diff application, and page-fetch replies
//!   recycle a fixed working set instead of allocating per operation,
//! * **dirty-range tracking** ([`DirtyRanges`]) — the synthetic-data
//!   path used by the large workload generators, which records which
//!   byte ranges an interval modified without materialising page
//!   contents (the run structure is what determines direct-diff
//!   message counts),
//! * a per-process **page protection state machine** ([`PageTable`],
//!   [`Access`]) standing in for `mprotect`/SIGSEGV,
//! * the **mprotect cost model** ([`MprotectModel`]) with the paper's
//!   coalescing optimisation (§3.1), and
//! * the **SMP memory-bus contention model** ([`BusModel`]) that
//!   reproduces the compute-time dilation the paper observes for FFT
//!   and Ocean (§3.4, "Memory bus contention and cache effects").

mod addr;
mod bus;
mod config;
mod diff;
mod dirty;
mod mprotect;
mod pool;
mod protect;

pub use addr::{pages_in_range, Addr, PageId, PAGE_SIZE};
pub use bus::BusModel;
pub use config::MemConfig;
pub use diff::{
    compute_diff, compute_diff_reference, compute_diff_tracked, Diff, DiffScratch, Page, WORD,
};
pub use dirty::DirtyRanges;
pub use mprotect::MprotectModel;
pub use pool::{PagePool, PoolStats};
pub use protect::{Access, PageTable};
