//! Memory-system cost parameters.

use genima_sim::Dur;

use crate::bus::BusModel;
use crate::mprotect::MprotectModel;

/// Host-side memory operation costs for the SVM protocol.
///
/// Calibrated against the paper's 200 MHz Pentium Pro nodes: page
/// copies and diff scans run at host `memcpy`-class bandwidth, and
/// protection changes use the measured `mprotect` costs.
///
/// # Example
///
/// ```
/// use genima_mem::MemConfig;
/// let cfg = MemConfig::default();
/// assert!(cfg.twin_copy.as_us() > 5.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MemConfig {
    /// Cost to create a twin (copy one 4 KB page).
    pub twin_copy: Dur,
    /// Cost to scan one page against its twin when computing a diff.
    pub diff_scan: Dur,
    /// Additional cost per contiguous modified run found in a diff
    /// (bookkeeping, message formatting).
    pub diff_per_run: Dur,
    /// Cost for the home to apply one packed diff message to a page
    /// (unpack plus scattered writes), excluding the interrupt.
    pub diff_apply: Dur,
    /// `mprotect` cost model.
    pub mprotect: MprotectModel,
    /// SMP memory-bus model.
    pub bus: BusModel,
}

impl MemConfig {
    /// Parameters of the paper's Pentium Pro quad-SMP nodes.
    pub fn pentium_pro() -> MemConfig {
        MemConfig {
            twin_copy: Dur::from_us(12),
            diff_scan: Dur::from_us(15),
            diff_per_run: Dur::from_ns(500),
            diff_apply: Dur::from_us(10),
            mprotect: MprotectModel::linux_ppro(),
            bus: BusModel::pentium_pro_fsb(),
        }
    }

    /// Cost to compute a diff with `runs` modified runs.
    pub fn diff_cost(&self, runs: usize) -> Dur {
        self.diff_scan + self.diff_per_run * runs as u64
    }
}

impl Default for MemConfig {
    fn default() -> Self {
        MemConfig::pentium_pro()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diff_cost_grows_with_runs() {
        let cfg = MemConfig::default();
        assert!(cfg.diff_cost(100) > cfg.diff_cost(1));
        assert_eq!(cfg.diff_cost(0), cfg.diff_scan);
    }

    #[test]
    fn default_is_pentium_pro() {
        assert_eq!(MemConfig::default(), MemConfig::pentium_pro());
    }
}
