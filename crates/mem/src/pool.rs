//! Pooled 4 KB page buffers.
//!
//! Twinning, diff application at the home, and page-fetch replies all
//! need page-sized buffers on the steady-state path. Allocating (and
//! dropping) a fresh 4 KB box for each is the single largest avoidable
//! host cost in the data plane — exactly the buffer-reuse discipline
//! RDMA protocol studies identify as decisive for NIC-speed data
//! planes. [`PagePool`] keeps retired pages on a free list and hands
//! them back zeroed or pre-copied, so after warm-up the protocol
//! recycles a fixed working set of buffers and the allocator drops out
//! of the hot path entirely.

use crate::diff::Page;

/// A free-list of 4 KB page buffers.
///
/// # Example
///
/// ```
/// use genima_mem::{Page, PagePool};
/// let mut pool = PagePool::new();
/// let mut src = Page::zeroed();
/// src.write(0, &[7; 4]);
/// let twin = pool.copy_of(&src);      // fresh allocation (pool empty)
/// assert_eq!(twin, src);
/// pool.recycle(twin);
/// let reused = pool.zeroed();         // reuses the recycled buffer
/// assert_eq!(reused, Page::zeroed());
/// assert_eq!(pool.stats().reuses, 1);
/// ```
#[derive(Debug, Default)]
pub struct PagePool {
    free: Vec<Page>,
    stats: PoolStats,
}

/// Allocation-behaviour counters for a [`PagePool`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Pages handed out by allocating (free list was empty).
    pub fresh_allocs: u64,
    /// Pages handed out from the free list (no allocation).
    pub reuses: u64,
    /// Pages returned to the free list.
    pub recycled: u64,
}

impl PagePool {
    /// Creates an empty pool.
    pub fn new() -> PagePool {
        PagePool::default()
    }

    /// Takes a page of zeros — recycled if one is free, else fresh.
    pub fn zeroed(&mut self) -> Page {
        match self.free.pop() {
            Some(mut p) => {
                self.stats.reuses += 1;
                p.zero();
                p
            }
            None => {
                self.stats.fresh_allocs += 1;
                Page::zeroed()
            }
        }
    }

    /// Takes a page holding a copy of `src` — the pooled replacement
    /// for `src.twin()` / `src.clone()`.
    pub fn copy_of(&mut self, src: &Page) -> Page {
        match self.free.pop() {
            Some(mut p) => {
                self.stats.reuses += 1;
                p.copy_from(src);
                p
            }
            None => {
                self.stats.fresh_allocs += 1;
                src.twin()
            }
        }
    }

    /// Returns a no-longer-needed page to the free list.
    pub fn recycle(&mut self, page: Page) {
        self.stats.recycled += 1;
        self.free.push(page);
    }

    /// Pages currently sitting on the free list.
    pub fn available(&self) -> usize {
        self.free.len()
    }

    /// Allocation-behaviour counters since construction.
    pub fn stats(&self) -> PoolStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_then_reuse() {
        let mut pool = PagePool::new();
        let a = pool.zeroed();
        let b = pool.zeroed();
        assert_eq!(pool.stats().fresh_allocs, 2);
        pool.recycle(a);
        pool.recycle(b);
        assert_eq!(pool.available(), 2);
        let _c = pool.zeroed();
        assert_eq!(pool.stats().reuses, 1);
        assert_eq!(pool.available(), 1);
    }

    #[test]
    fn recycled_buffers_come_back_clean() {
        let mut pool = PagePool::new();
        let mut dirty = pool.zeroed();
        dirty.write(100, &[0xff; 16]);
        pool.recycle(dirty);
        assert_eq!(pool.zeroed(), Page::zeroed());
    }

    #[test]
    fn copy_of_matches_source_fresh_and_reused() {
        let mut pool = PagePool::new();
        let mut src = Page::zeroed();
        src.write(4000, &[9; 8]);
        let fresh = pool.copy_of(&src);
        assert_eq!(fresh, src);
        pool.recycle(fresh);
        src.write(0, &[1; 4]);
        let reused = pool.copy_of(&src);
        assert_eq!(reused, src);
        assert_eq!(pool.stats().reuses, 1);
    }
}
