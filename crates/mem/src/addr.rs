//! Shared-address-space addressing.

use std::fmt;
use std::ops::Add;

/// Size of one shared page in bytes (the paper's platform uses 4 KB
/// x86 pages).
pub const PAGE_SIZE: usize = 4096;

/// A byte address in the shared virtual address space.
///
/// # Example
///
/// ```
/// use genima_mem::{Addr, PAGE_SIZE};
/// let a = Addr::new(PAGE_SIZE as u64 + 12);
/// assert_eq!(a.page().index(), 1);
/// assert_eq!(a.offset(), 12);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Addr(u64);

impl Addr {
    /// Wraps a raw shared-space byte address.
    pub const fn new(a: u64) -> Addr {
        Addr(a)
    }

    /// Returns the raw byte address.
    pub const fn value(self) -> u64 {
        self.0
    }

    /// The page containing this address.
    pub const fn page(self) -> PageId {
        PageId((self.0 / PAGE_SIZE as u64) as u32)
    }

    /// Byte offset within the containing page.
    pub const fn offset(self) -> u32 {
        (self.0 % PAGE_SIZE as u64) as u32
    }
}

impl Add<u64> for Addr {
    type Output = Addr;
    fn add(self, rhs: u64) -> Addr {
        Addr(self.0 + rhs)
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

/// Identifies one shared page.
///
/// # Example
///
/// ```
/// use genima_mem::{Addr, PageId};
/// assert_eq!(PageId::new(3).base(), Addr::new(3 * 4096));
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PageId(u32);

impl PageId {
    /// Creates a page id from a zero-based page index.
    pub const fn new(index: usize) -> PageId {
        PageId(index as u32)
    }

    /// The zero-based page index.
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// The first byte address of the page.
    pub const fn base(self) -> Addr {
        Addr(self.0 as u64 * PAGE_SIZE as u64)
    }

    /// The page id `n` pages after this one.
    pub const fn offset_by(self, n: usize) -> PageId {
        PageId(self.0 + n as u32)
    }
}

impl fmt::Display for PageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "page{}", self.0)
    }
}

/// Iterates over all pages touched by the byte range `[addr, addr+len)`.
pub fn pages_in_range(addr: Addr, len: u64) -> impl Iterator<Item = PageId> {
    let first = addr.value() / PAGE_SIZE as u64;
    let last = if len == 0 {
        first
    } else {
        (addr.value() + len - 1) / PAGE_SIZE as u64
    };
    (first..=last).map(|i| PageId(i as u32))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addr_decomposition() {
        let a = Addr::new(2 * PAGE_SIZE as u64 + 100);
        assert_eq!(a.page(), PageId::new(2));
        assert_eq!(a.offset(), 100);
        assert_eq!(a + 5, Addr::new(2 * PAGE_SIZE as u64 + 105));
        assert_eq!(a.to_string(), "0x2064");
    }

    #[test]
    fn page_base_round_trip() {
        let p = PageId::new(7);
        assert_eq!(p.base().page(), p);
        assert_eq!(p.base().offset(), 0);
        assert_eq!(p.offset_by(3), PageId::new(10));
    }

    #[test]
    fn range_iteration() {
        let v: Vec<PageId> = pages_in_range(Addr::new(4000), 200).collect();
        assert_eq!(v, vec![PageId::new(0), PageId::new(1)]);
        let v: Vec<PageId> = pages_in_range(Addr::new(4096), 4096).collect();
        assert_eq!(v, vec![PageId::new(1)]);
        let v: Vec<PageId> = pages_in_range(Addr::new(0), 0).collect();
        assert_eq!(v, vec![PageId::new(0)]);
    }
}
