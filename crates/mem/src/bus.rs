//! The SMP memory-bus contention model.

/// Analytic model of the shared memory bus inside one SMP node.
///
/// The paper observes (§3.4) that for FFT and Ocean the aggregate
/// compute time *increases* in the parallel run because the misses of
/// the four processors in each node contend on the SMP memory bus.
/// We reproduce that effect with an M/M/1-flavoured dilation: given
/// the aggregate miss bandwidth the co-scheduled processes demand,
/// compute time is stretched by `1 / (1 - utilisation)` up to a cap.
///
/// # Example
///
/// ```
/// use genima_mem::BusModel;
/// let bus = BusModel::pentium_pro_fsb();
/// assert_eq!(bus.dilation(0), 1.0);
/// assert!(bus.dilation(400_000_000) > 1.5);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct BusModel {
    /// Sustained bus bandwidth in bytes per second.
    pub bandwidth: u64,
    /// Upper bound on the dilation factor (the bus saturates rather
    /// than diverging).
    pub max_dilation: f64,
}

impl BusModel {
    /// The 66 MHz Pentium Pro front-side bus: ~528 MB/s peak, ~500 MB/s
    /// sustained.
    pub fn pentium_pro_fsb() -> BusModel {
        BusModel {
            bandwidth: 500_000_000,
            max_dilation: 4.0,
        }
    }

    /// Compute-time dilation factor for an aggregate demand of
    /// `bytes_per_sec` from all processors in the node.
    pub fn dilation(&self, bytes_per_sec: u64) -> f64 {
        let u = bytes_per_sec as f64 / self.bandwidth as f64;
        if u >= 1.0 {
            return self.max_dilation;
        }
        // Queueing delay grows as u/(1-u); only the memory-stall share
        // of compute time is affected, which the caller encodes in its
        // demand estimate. A gentle knee below 60% utilisation keeps
        // uncontended runs unaffected.
        let d = 1.0 / (1.0 - u * u);
        d.min(self.max_dilation)
    }
}

impl Default for BusModel {
    fn default() -> Self {
        BusModel::pentium_pro_fsb()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_demand_no_dilation() {
        assert_eq!(BusModel::default().dilation(0), 1.0);
    }

    #[test]
    fn dilation_is_monotonic() {
        let bus = BusModel::default();
        let mut prev = 0.0;
        for d in [0u64, 100, 200, 300, 400, 500, 600, 800].map(|m| m * 1_000_000) {
            let f = bus.dilation(d);
            assert!(f >= prev, "dilation must not decrease");
            prev = f;
        }
    }

    #[test]
    fn dilation_is_capped() {
        let bus = BusModel::default();
        assert!(bus.dilation(50_000_000_000) <= bus.max_dilation);
    }

    #[test]
    fn light_load_nearly_free() {
        let bus = BusModel::default();
        let f = bus.dilation(50_000_000); // 10% utilisation
        assert!(f < 1.05, "10% load should barely dilate, got {f}");
    }
}
