//! The per-process page protection state machine.
//!
//! SVM systems use the virtual-memory hardware to detect shared
//! accesses: pages are kept `mprotect`-ed and the SIGSEGV handler runs
//! the coherence protocol. We model the same three-state machine per
//! process; the protocol layer decides when to upgrade or invalidate
//! and charges [`MprotectModel`](crate::MprotectModel) costs.

use std::collections::HashMap;

use crate::addr::PageId;

/// Hardware protection of one page for one process.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Access {
    /// Any access faults (invalid page).
    #[default]
    None,
    /// Reads succeed, writes fault (clean page).
    Read,
    /// All accesses succeed (dirty page, twin exists).
    ReadWrite,
}

impl Access {
    /// Returns `true` if a read at this protection level faults.
    pub fn read_faults(self) -> bool {
        matches!(self, Access::None)
    }

    /// Returns `true` if a write at this protection level faults.
    pub fn write_faults(self) -> bool {
        !matches!(self, Access::ReadWrite)
    }
}

/// One process's view of the shared pages.
///
/// Pages absent from the table are [`Access::None`] — everything
/// starts invalid, exactly like a freshly `mmap`-ed SVM region.
///
/// # Example
///
/// ```
/// use genima_mem::{Access, PageId, PageTable};
/// let mut pt = PageTable::new();
/// let p = PageId::new(0);
/// assert!(pt.access(p).read_faults());
/// pt.set(p, Access::Read);
/// assert!(!pt.access(p).read_faults());
/// assert!(pt.access(p).write_faults());
/// ```
#[derive(Clone, Debug, Default)]
pub struct PageTable {
    map: HashMap<PageId, Access>,
    invalidations: u64,
    upgrades: u64,
}

impl PageTable {
    /// Creates an all-invalid table.
    pub fn new() -> PageTable {
        PageTable::default()
    }

    /// Current protection of `page`.
    pub fn access(&self, page: PageId) -> Access {
        self.map.get(&page).copied().unwrap_or_default()
    }

    /// Sets the protection of `page`, returning the previous value.
    pub fn set(&mut self, page: PageId, access: Access) -> Access {
        let prev = self.map.insert(page, access).unwrap_or_default();
        match (prev, access) {
            (_, Access::None) if prev != Access::None => self.invalidations += 1,
            (Access::None, Access::Read | Access::ReadWrite)
            | (Access::Read, Access::ReadWrite) => self.upgrades += 1,
            _ => {}
        }
        prev
    }

    /// Invalidates every page in `pages`, returning how many actually
    /// changed protection (the number of `mprotect` calls needed
    /// before coalescing).
    pub fn invalidate_all<I: IntoIterator<Item = PageId>>(&mut self, pages: I) -> usize {
        let mut changed = 0;
        for p in pages {
            if self.access(p) != Access::None {
                self.set(p, Access::None);
                changed += 1;
            }
        }
        changed
    }

    /// Number of pages currently mapped with some access.
    pub fn mapped(&self) -> usize {
        self.map
            .values()
            .filter(|a| !matches!(a, Access::None))
            .count()
    }

    /// Lifetime count of protection downgrades to `None`.
    pub fn invalidations(&self) -> u64 {
        self.invalidations
    }

    /// Lifetime count of protection upgrades.
    pub fn upgrades(&self) -> u64 {
        self.upgrades
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pages_start_invalid() {
        let pt = PageTable::new();
        assert_eq!(pt.access(PageId::new(99)), Access::None);
        assert_eq!(pt.mapped(), 0);
    }

    #[test]
    fn fault_predicates() {
        assert!(Access::None.read_faults());
        assert!(Access::None.write_faults());
        assert!(!Access::Read.read_faults());
        assert!(Access::Read.write_faults());
        assert!(!Access::ReadWrite.read_faults());
        assert!(!Access::ReadWrite.write_faults());
    }

    #[test]
    fn set_returns_previous() {
        let mut pt = PageTable::new();
        let p = PageId::new(1);
        assert_eq!(pt.set(p, Access::Read), Access::None);
        assert_eq!(pt.set(p, Access::ReadWrite), Access::Read);
        assert_eq!(pt.upgrades(), 2);
        assert_eq!(pt.set(p, Access::None), Access::ReadWrite);
        assert_eq!(pt.invalidations(), 1);
    }

    #[test]
    fn invalidate_all_counts_changes() {
        let mut pt = PageTable::new();
        pt.set(PageId::new(0), Access::Read);
        pt.set(PageId::new(1), Access::ReadWrite);
        let changed = pt.invalidate_all([PageId::new(0), PageId::new(1), PageId::new(2)]);
        assert_eq!(changed, 2, "page 2 was already invalid");
        assert_eq!(pt.mapped(), 0);
    }
}
