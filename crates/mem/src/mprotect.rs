//! The `mprotect` cost model.

use genima_sim::Dur;

/// Cost model for page-protection system calls.
///
/// The paper (§3.1) reports that a single-page `mprotect` costs a few
/// microseconds and that coalescing calls over consecutive pages
/// reduces the per-page cost; Table 2 shows `mprotect` accounting for
/// up to half of all SVM overhead (Radix). The model charges a fixed
/// per-call cost plus a smaller per-additional-page cost for coalesced
/// ranges.
///
/// # Example
///
/// ```
/// use genima_mem::MprotectModel;
/// let m = MprotectModel::default();
/// let one = m.cost(1);
/// let eight = m.cost(8);
/// assert!(eight < one * 8, "coalescing must amortise");
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MprotectModel {
    /// Cost of one call covering a single page (trap + kernel work).
    pub single: Dur,
    /// Incremental cost per additional consecutive page in a coalesced
    /// call (PTE update + TLB shootdown share).
    pub per_extra_page: Dur,
}

impl MprotectModel {
    /// Parameters calibrated to the paper's Linux 2.0-era measurements.
    pub fn linux_ppro() -> MprotectModel {
        MprotectModel {
            single: Dur::from_us(8),
            per_extra_page: Dur::from_us_f64(1.5),
        }
    }

    /// Cost of one coalesced call covering `pages` consecutive pages.
    /// Zero pages cost nothing.
    pub fn cost(&self, pages: usize) -> Dur {
        match pages {
            0 => Dur::ZERO,
            n => self.single + self.per_extra_page * (n as u64 - 1),
        }
    }

    /// Cost of protecting `total` pages grouped into `calls` coalesced
    /// ranges (the protocol tracks contiguity and coalesces consecutive
    /// pages into single calls, §3.1).
    ///
    /// # Panics
    ///
    /// Panics if `calls > total` or (`calls == 0` while `total > 0`).
    pub fn cost_grouped(&self, total: usize, calls: usize) -> Dur {
        if total == 0 {
            return Dur::ZERO;
        }
        assert!(
            calls >= 1 && calls <= total,
            "invalid grouping {calls}/{total}"
        );
        self.single * calls as u64 + self.per_extra_page * (total - calls) as u64
    }
}

impl Default for MprotectModel {
    fn default() -> Self {
        MprotectModel::linux_ppro()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_pages_free() {
        assert_eq!(MprotectModel::default().cost(0), Dur::ZERO);
        assert_eq!(MprotectModel::default().cost_grouped(0, 0), Dur::ZERO);
    }

    #[test]
    fn single_page_cost() {
        let m = MprotectModel::default();
        assert_eq!(m.cost(1), Dur::from_us(8));
    }

    #[test]
    fn coalescing_amortises() {
        let m = MprotectModel::default();
        assert_eq!(m.cost(3), Dur::from_us(8) + Dur::from_us(3));
        // 8 pages coalesced: 8 + 7*1.5 = 18.5us, vs 64us separate.
        assert!(m.cost(8) < m.cost(1) * 8 / 3);
    }

    #[test]
    fn grouped_cost_matches_sum_of_calls() {
        let m = MprotectModel::default();
        // 10 pages in 2 calls of 5: 2*(8 + 4*1.5) = 28us.
        assert_eq!(m.cost_grouped(10, 2), m.cost(5) * 2);
        // 10 pages in 10 calls: 10 singles.
        assert_eq!(m.cost_grouped(10, 10), m.cost(1) * 10);
    }

    #[test]
    #[should_panic(expected = "invalid grouping")]
    fn bad_grouping_panics() {
        MprotectModel::default().cost_grouped(2, 3);
    }
}
