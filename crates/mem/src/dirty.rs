//! Dirty-range tracking for the synthetic-data workload path.

use crate::addr::PAGE_SIZE;
use crate::diff::WORD;

/// The set of byte ranges an interval modified within one page,
/// maintained word-aligned, coalesced and sorted.
///
/// Large workload generators use this instead of materialising page
/// contents: the *number of runs* determines how many direct-diff
/// messages GeNIMA sends for the page, and the *byte count* determines
/// diff message sizes — those are the performance-relevant properties.
///
/// # Example
///
/// ```
/// use genima_mem::DirtyRanges;
/// let mut d = DirtyRanges::new();
/// d.add(0, 4);
/// d.add(4, 4);   // adjacent: coalesces
/// d.add(100, 8); // separate run
/// assert_eq!(d.runs(), 2);
/// assert_eq!(d.bytes(), 16);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DirtyRanges {
    /// Half-open `[start, end)` byte ranges, sorted and disjoint.
    ranges: Vec<(u32, u32)>,
}

impl DirtyRanges {
    /// Creates an empty set.
    pub fn new() -> DirtyRanges {
        DirtyRanges::default()
    }

    /// Marks `[offset, offset+len)` dirty, expanding to word
    /// boundaries and coalescing with touching ranges.
    ///
    /// # Panics
    ///
    /// Panics if the range runs past the end of the page or `len` is 0.
    pub fn add(&mut self, offset: u32, len: u32) {
        assert!(len > 0, "empty dirty range");
        assert!(
            (offset + len) as usize <= PAGE_SIZE,
            "dirty range [{offset}, {}) escapes the page",
            offset + len
        );
        let w = WORD as u32;
        let start = offset / w * w;
        let end = (offset + len).div_ceil(w) * w;

        // Find insertion window of overlapping/touching ranges.
        let mut lo = self.ranges.partition_point(|&(_, e)| e < start);
        let mut hi = lo;
        let mut new_start = start;
        let mut new_end = end;
        while hi < self.ranges.len() && self.ranges[hi].0 <= end {
            new_start = new_start.min(self.ranges[hi].0);
            new_end = new_end.max(self.ranges[hi].1);
            hi += 1;
        }
        if lo > 0 && self.ranges[lo - 1].1 >= start {
            lo -= 1;
            new_start = new_start.min(self.ranges[lo].0);
            new_end = new_end.max(self.ranges[lo].1);
        }
        self.ranges.splice(lo..hi, [(new_start, new_end)]);
    }

    /// Number of contiguous dirty runs.
    pub fn runs(&self) -> usize {
        self.ranges.len()
    }

    /// Total dirty bytes (word-aligned).
    pub fn bytes(&self) -> u32 {
        self.ranges.iter().map(|&(s, e)| e - s).sum()
    }

    /// Returns `true` if nothing is dirty.
    pub fn is_empty(&self) -> bool {
        self.ranges.is_empty()
    }

    /// Iterates over `(offset, len)` runs in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        self.ranges.iter().map(|&(s, e)| (s, e - s))
    }

    /// Clears all ranges (start of a new interval).
    pub fn clear(&mut self) {
        self.ranges.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn word_alignment_expands() {
        let mut d = DirtyRanges::new();
        d.add(9, 1);
        assert_eq!(d.iter().collect::<Vec<_>>(), vec![(8, 4)]);
    }

    #[test]
    fn touching_ranges_coalesce() {
        let mut d = DirtyRanges::new();
        d.add(0, 4);
        d.add(8, 4);
        assert_eq!(d.runs(), 2);
        d.add(4, 4); // bridges the gap
        assert_eq!(d.runs(), 1);
        assert_eq!(d.bytes(), 12);
    }

    #[test]
    fn overlapping_ranges_merge() {
        let mut d = DirtyRanges::new();
        d.add(0, 100);
        d.add(50, 100);
        assert_eq!(d.runs(), 1);
        assert_eq!(d.bytes(), 152); // [0, 152)
    }

    #[test]
    fn out_of_order_inserts_stay_sorted() {
        let mut d = DirtyRanges::new();
        d.add(2000, 4);
        d.add(0, 4);
        d.add(1000, 4);
        let v: Vec<_> = d.iter().collect();
        assert_eq!(v, vec![(0, 4), (1000, 4), (2000, 4)]);
    }

    #[test]
    fn clear_empties() {
        let mut d = DirtyRanges::new();
        d.add(0, 4);
        d.clear();
        assert!(d.is_empty());
        assert_eq!(d.bytes(), 0);
    }

    #[test]
    #[should_panic(expected = "escapes the page")]
    fn out_of_page_panics() {
        DirtyRanges::new().add(4094, 4);
    }

    proptest! {
        /// Ranges stay sorted, disjoint (with at least a word gap),
        /// word-aligned, and cover every added byte.
        #[test]
        fn prop_invariants(adds in proptest::collection::vec(
            (0u32..PAGE_SIZE as u32 - 64, 1u32..64), 1..40
        )) {
            let mut d = DirtyRanges::new();
            for &(off, len) in &adds {
                d.add(off, len);
            }
            let v: Vec<(u32, u32)> = d.iter().collect();
            let mut prev_end = None::<u32>;
            for &(s, l) in &v {
                prop_assert!(l > 0);
                prop_assert_eq!(s % 4, 0);
                prop_assert_eq!(l % 4, 0);
                if let Some(pe) = prev_end {
                    prop_assert!(s > pe, "ranges must be disjoint and non-touching");
                }
                prev_end = Some(s + l);
            }
            // Coverage: each added byte falls inside some range.
            for &(off, len) in &adds {
                for b in [off, off + len - 1] {
                    prop_assert!(
                        v.iter().any(|&(s, l)| b >= s && b < s + l),
                        "byte {} not covered", b
                    );
                }
            }
        }
    }
}
