//! Twinning and diffing over real page contents.
//!
//! The diff engine is the hottest host-side data-plane operation: every
//! interval flush scans each dirty page against its twin. Three scan
//! strategies share one output representation ([`Diff`]):
//!
//! * [`compute_diff`] — the production **block scan**: twin and current
//!   are compared 32 bytes at a time (paired `u128` loads folded into
//!   one branch) and only a block that differs is refined word by
//!   word. Clean spans of a page cost one branch per 32 bytes instead
//!   of eight.
//! * [`compute_diff_tracked`] — the **write-tracked scan**: given the
//!   [`DirtyRanges`](crate::DirtyRanges) the interval actually wrote,
//!   only those byte ranges are scanned and a clean page is skipped
//!   without reading it at all.
//! * [`compute_diff_reference`] — the original word-by-word scan, kept
//!   as the executable specification the fast paths are proptested
//!   against (`block scan == reference`, `tracked == full scan`).
//!
//! All three produce bit-identical [`Diff`]s for the same inputs (for
//! the tracked scan: the same inputs restricted to what the writer
//! touched — see its documentation).

use crate::addr::PAGE_SIZE;
use crate::dirty::DirtyRanges;

/// Comparison granularity in bytes: diffs are computed word by word,
/// as in the original LRC implementations.
pub const WORD: usize = 4;

/// Coarse comparison granularity of the block scan, in bytes: two
/// `u128` loads per side, folded into one branch.
const BLOCK: usize = 32;

/// One shared page's contents.
///
/// # Example
///
/// ```
/// use genima_mem::Page;
/// let mut p = Page::zeroed();
/// p.write(8, &[1, 2, 3, 4]);
/// assert_eq!(&p.bytes()[8..12], &[1, 2, 3, 4]);
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct Page {
    bytes: Box<[u8]>,
}

impl Page {
    /// A page of zeros.
    pub fn zeroed() -> Page {
        Page {
            bytes: vec![0u8; PAGE_SIZE].into_boxed_slice(),
        }
    }

    /// The page contents.
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Writes `data` at byte `offset`.
    ///
    /// # Panics
    ///
    /// Panics if the write would run past the end of the page.
    pub fn write(&mut self, offset: usize, data: &[u8]) {
        self.bytes[offset..offset + data.len()].copy_from_slice(data);
    }

    /// Reads `len` bytes at `offset`.
    ///
    /// # Panics
    ///
    /// Panics if the read would run past the end of the page.
    pub fn read(&self, offset: usize, len: usize) -> &[u8] {
        &self.bytes[offset..offset + len]
    }

    /// Overwrites this page with the contents of `src` (buffer reuse —
    /// no allocation, unlike `clone`).
    pub fn copy_from(&mut self, src: &Page) {
        self.bytes.copy_from_slice(&src.bytes);
    }

    /// Resets every byte to zero (buffer reuse — no allocation).
    pub fn zero(&mut self) {
        self.bytes.fill(0);
    }

    /// Creates a twin: a snapshot taken before the first write of an
    /// interval. Allocates; steady-state protocol code twins through
    /// [`PagePool`](crate::PagePool) instead.
    pub fn twin(&self) -> Page {
        self.clone()
    }
}

impl std::fmt::Debug for Page {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let nonzero = self.bytes.iter().filter(|&&b| b != 0).count();
        write!(f, "Page({nonzero} nonzero bytes)")
    }
}

impl Default for Page {
    fn default() -> Self {
        Page::zeroed()
    }
}

/// The word-granularity difference between a page and its twin.
///
/// Runs are stored flat: one `(offset, len)` index plus a single
/// payload buffer holding every run's bytes back to back, so a diff
/// costs two allocations however many runs it has (the old
/// representation paid one `Vec` per run). In the Base protocol a diff
/// is packed into one message per page; in GeNIMA's *direct diffs*
/// each run becomes its own remote-deposit message aimed straight at
/// the home copy (§2, "Remote Deposit").
///
/// # Example
///
/// ```
/// use genima_mem::Diff;
/// let mut d = Diff::default();
/// d.push_run(8, &[1, 2, 3, 4]);
/// d.push_run(100, &[5; 8]);
/// assert_eq!(d.run_count(), 2);
/// assert_eq!(d.bytes(), 12);
/// assert_eq!(d.runs().next(), Some((8, &[1u8, 2, 3, 4][..])));
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Diff {
    /// `(page offset, byte length)` per run, ascending, disjoint.
    runs: Vec<(u32, u32)>,
    /// All run payloads, concatenated in run order.
    payload: Vec<u8>,
}

impl Diff {
    /// Number of contiguous modified runs — the number of messages
    /// direct diffs will send for this page.
    pub fn run_count(&self) -> usize {
        self.runs.len()
    }

    /// Total modified payload bytes.
    pub fn bytes(&self) -> u32 {
        self.payload.len() as u32
    }

    /// Returns `true` if the page did not change.
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }

    /// Iterates over `(offset, data)` runs in ascending offset order.
    /// Each `data` slice borrows the shared payload buffer.
    pub fn runs(&self) -> impl Iterator<Item = (u32, &[u8])> + '_ {
        let mut at = 0usize;
        self.runs.iter().map(move |&(off, len)| {
            let data = &self.payload[at..at + len as usize];
            at += len as usize;
            (off, data)
        })
    }

    /// Appends a run. Runs must be pushed in ascending offset order,
    /// word-aligned, and separated by at least one untouched word —
    /// the canonical form every scan produces.
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty or the run breaks canonical form.
    pub fn push_run(&mut self, offset: u32, data: &[u8]) {
        assert!(!data.is_empty(), "empty diff run");
        assert_eq!(offset as usize % WORD, 0, "run offset must be word-aligned");
        assert_eq!(data.len() % WORD, 0, "run length must be whole words");
        if let Some(&(o, l)) = self.runs.last() {
            assert!(
                offset >= o + l + WORD as u32,
                "runs must ascend with at least a word gap"
            );
        }
        self.runs.push((offset, data.len() as u32));
        self.payload.extend_from_slice(data);
    }

    /// Empties the diff, keeping both buffers' capacity for reuse.
    pub fn clear(&mut self) {
        self.runs.clear();
        self.payload.clear();
    }

    /// Applies the diff to `page` (typically the home copy).
    pub fn apply(&self, page: &mut Page) {
        for (offset, data) in self.runs() {
            page.write(offset as usize, data);
        }
    }

    /// Appends a span of contiguous changed words, merging into the
    /// previous run when adjacent. A skipped (unchanged) word between
    /// two pushes breaks contiguity, so runs come out exactly as the
    /// reference scan produces them.
    fn push_span(&mut self, offset: u32, bytes: &[u8]) {
        if let Some(last) = self.runs.last_mut() {
            if last.0 + last.1 == offset {
                last.1 += bytes.len() as u32;
                self.payload.extend_from_slice(bytes);
                return;
            }
        }
        self.runs.push((offset, bytes.len() as u32));
        self.payload.extend_from_slice(bytes);
    }

    /// Appends one changed word (see [`Diff::push_span`]).
    fn push_word(&mut self, offset: u32, word: &[u8]) {
        self.push_span(offset, word);
    }
}

/// Reads sixteen bytes at `off` as one comparable value. Little-endian
/// layout is forced so word lane `i` of the value maps to bytes
/// `4i..4i+4` on every platform.
#[inline]
fn wide_at(bytes: &[u8], off: usize) -> u128 {
    let mut buf = [0u8; 16];
    buf.copy_from_slice(&bytes[off..off + 16]);
    u128::from_le_bytes(buf)
}

/// Returns `true` if every 32-bit lane of the XOR is nonzero, i.e.
/// all four words of the sixteen-byte group changed.
#[inline]
fn all_lanes_changed(x: u128) -> bool {
    x as u32 != 0 && (x >> 32) as u32 != 0 && (x >> 64) as u32 != 0 && (x >> 96) as u32 != 0
}

/// Emits the changed words of one sixteen-byte group given its
/// already-computed XOR: a word differs exactly where its 32-bit lane
/// of `x` is nonzero, so refinement costs no memory re-reads.
#[inline]
fn refine_half(cur: &[u8], base: usize, x: u128, out: &mut Diff) {
    if x == 0 {
        return;
    }
    for lane in 0..4usize {
        if (x >> (32 * lane)) as u32 != 0 {
            let off = base + lane * WORD;
            out.push_word(off as u32, &cur[off..off + WORD]);
        }
    }
}

/// Scans `[start, end)` of the page (word-aligned bounds) into `out`:
/// 32-byte block compares over the aligned middle (two `u128` XORs
/// folded into one branch), lane refinement only where a block
/// differs, word compares on the unaligned head and tail.
fn scan_region(twin: &[u8], cur: &[u8], start: usize, end: usize, out: &mut Diff) {
    debug_assert_eq!(start % WORD, 0);
    debug_assert_eq!(end % WORD, 0);
    debug_assert!(end <= PAGE_SIZE);
    let mut w = start;
    let word_check = |w: usize, out: &mut Diff| {
        if twin[w..w + WORD] != cur[w..w + WORD] {
            out.push_word(w as u32, &cur[w..w + WORD]);
        }
    };
    // Head: words up to the first block boundary.
    while w < end && !w.is_multiple_of(BLOCK) {
        word_check(w, out);
        w += WORD;
    }
    // Middle: one branch per block; refine only inside changed blocks,
    // reusing the XOR values the branch already computed. A block
    // whose every word changed (bulk overwrite) is appended whole.
    while w + BLOCK <= end {
        let x1 = wide_at(twin, w) ^ wide_at(cur, w);
        let x2 = wide_at(twin, w + 16) ^ wide_at(cur, w + 16);
        if x1 | x2 != 0 {
            if all_lanes_changed(x1) && all_lanes_changed(x2) {
                out.push_span(w as u32, &cur[w..w + BLOCK]);
            } else {
                refine_half(cur, w, x1, out);
                refine_half(cur, w + 16, x2, out);
            }
        }
        w += BLOCK;
    }
    // Tail: the words after the last full block.
    while w < end {
        word_check(w, out);
        w += WORD;
    }
}

/// Compares `current` against its `twin` and returns the modified
/// runs, scanning in 32-byte blocks with per-word refinement
/// inside changed blocks. Output is bit-identical to
/// [`compute_diff_reference`].
///
/// # Example
///
/// ```
/// use genima_mem::{compute_diff, Page};
/// let twin = Page::zeroed();
/// let mut cur = twin.twin();
/// cur.write(100, &[9; 8]);
/// let d = compute_diff(&twin, &cur);
/// assert_eq!(d.run_count(), 1);
/// assert_eq!(d.bytes(), 8);
/// let mut home = Page::zeroed();
/// d.apply(&mut home);
/// assert_eq!(home, cur);
/// ```
pub fn compute_diff(twin: &Page, current: &Page) -> Diff {
    let mut out = Diff::default();
    scan_region(twin.bytes(), current.bytes(), 0, PAGE_SIZE, &mut out);
    out
}

/// Compares only the byte ranges `dirty` says the interval wrote.
///
/// A page with no recorded writes produces an empty diff without a
/// single byte read. Because [`DirtyRanges`](crate::DirtyRanges) keeps
/// ranges word-aligned, disjoint, and separated by at least one
/// untouched word, run boundaries fall exactly where a full scan would
/// put them: for a single writer the output is bit-identical to
/// [`compute_diff`]. (When co-located processes share the node copy, a
/// full scan would additionally pick up *their* bytes; the tracked
/// scan deliberately excludes them — each writer flushes its own runs,
/// and the home applies the union.)
pub fn compute_diff_tracked(twin: &Page, current: &Page, dirty: &DirtyRanges) -> Diff {
    let mut out = Diff::default();
    if dirty.is_empty() {
        return out;
    }
    let (t, c) = (twin.bytes(), current.bytes());
    for (off, len) in dirty.iter() {
        scan_region(t, c, off as usize, (off + len) as usize, &mut out);
    }
    out
}

/// The original word-by-word scan: the executable specification the
/// block and tracked scans are tested against. Allocates one `Vec` per
/// run, like the historical implementation, so benchmarks against it
/// measure the real before/after cost.
pub fn compute_diff_reference(twin: &Page, current: &Page) -> Diff {
    let t = twin.bytes();
    let c = current.bytes();
    let mut runs: Vec<(u32, Vec<u8>)> = Vec::new();
    let mut open: Option<(u32, Vec<u8>)> = None;
    for w in (0..PAGE_SIZE).step_by(WORD) {
        let changed = t[w..w + WORD] != c[w..w + WORD];
        match (&mut open, changed) {
            (Some((_, data)), true) => data.extend_from_slice(&c[w..w + WORD]),
            (Some(_), false) => runs.push(open.take().expect("open run")),
            (None, true) => open = Some((w as u32, c[w..w + WORD].to_vec())),
            (None, false) => {}
        }
    }
    if let Some(run) = open {
        runs.push(run);
    }
    let mut out = Diff::default();
    for (offset, data) in runs {
        out.push_run(offset, &data);
    }
    out
}

/// A reusable diff arena: run index and payload buffers persist across
/// computations, so scanning N pages in a flush loop costs zero
/// allocations after the first page.
///
/// # Example
///
/// ```
/// use genima_mem::{DiffScratch, Page};
/// let twin = Page::zeroed();
/// let mut cur = twin.twin();
/// cur.write(0, &[1; 4]);
/// let mut scratch = DiffScratch::new();
/// assert_eq!(scratch.compute(&twin, &cur).run_count(), 1);
/// cur.write(512, &[2; 4]);
/// assert_eq!(scratch.compute(&twin, &cur).run_count(), 2);
/// ```
#[derive(Debug, Default)]
pub struct DiffScratch {
    diff: Diff,
}

impl DiffScratch {
    /// Creates an empty arena.
    pub fn new() -> DiffScratch {
        DiffScratch::default()
    }

    /// Block-scans the whole page into the arena and returns the diff.
    pub fn compute(&mut self, twin: &Page, current: &Page) -> &Diff {
        self.diff.clear();
        scan_region(twin.bytes(), current.bytes(), 0, PAGE_SIZE, &mut self.diff);
        &self.diff
    }

    /// Scans only the tracked dirty ranges into the arena (see
    /// [`compute_diff_tracked`]).
    pub fn compute_tracked(&mut self, twin: &Page, current: &Page, dirty: &DirtyRanges) -> &Diff {
        self.diff.clear();
        if dirty.is_empty() {
            return &self.diff;
        }
        let (t, c) = (twin.bytes(), current.bytes());
        for (off, len) in dirty.iter() {
            scan_region(t, c, off as usize, (off + len) as usize, &mut self.diff);
        }
        &self.diff
    }

    /// Moves the computed diff out (for a diff that must outlive the
    /// arena, e.g. queued in an in-flight message). The arena restarts
    /// empty and re-grows on the next computation.
    pub fn take(&mut self) -> Diff {
        std::mem::take(&mut self.diff)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn identical_pages_have_empty_diff() {
        let p = Page::zeroed();
        let d = compute_diff(&p, &p.twin());
        assert!(d.is_empty());
        assert_eq!(d.bytes(), 0);
    }

    #[test]
    fn adjacent_words_merge_into_one_run() {
        let twin = Page::zeroed();
        let mut cur = twin.twin();
        cur.write(0, &[1; 4]);
        cur.write(4, &[2; 4]);
        let d = compute_diff(&twin, &cur);
        assert_eq!(d.run_count(), 1);
        assert_eq!(d.bytes(), 8);
    }

    #[test]
    fn separated_words_make_separate_runs() {
        let twin = Page::zeroed();
        let mut cur = twin.twin();
        cur.write(0, &[1; 4]);
        cur.write(100, &[2; 4]);
        cur.write(4092, &[3; 4]);
        let d = compute_diff(&twin, &cur);
        assert_eq!(d.run_count(), 3);
        let offs: Vec<u32> = d.runs().map(|(o, _)| o).collect();
        assert_eq!(offs, vec![0, 100, 4092]);
    }

    #[test]
    fn sub_word_write_diffs_whole_word() {
        let twin = Page::zeroed();
        let mut cur = twin.twin();
        cur.write(9, &[7]); // one byte inside word 2
        let d = compute_diff(&twin, &cur);
        assert_eq!(d.run_count(), 1);
        let (off, data) = d.runs().next().unwrap();
        assert_eq!(off, 8);
        assert_eq!(data.len(), 4);
        assert_eq!(d.bytes(), 4);
    }

    #[test]
    fn apply_reconstructs_page() {
        let mut twin = Page::zeroed();
        twin.write(0, &[5; 64]);
        let mut cur = twin.twin();
        cur.write(10, &[1, 2, 3]);
        cur.write(2000, &[4; 100]);
        let d = compute_diff(&twin, &cur);
        let mut home = twin.clone();
        d.apply(&mut home);
        assert_eq!(home, cur);
    }

    #[test]
    fn changes_straddling_block_boundaries_merge() {
        // A run crossing a 32-byte block boundary must stay one run.
        let twin = Page::zeroed();
        let mut cur = twin.twin();
        cur.write(28, &[9; 8]); // words at 28 and 32: adjacent blocks
        let d = compute_diff(&twin, &cur);
        assert_eq!(d.run_count(), 1);
        assert_eq!(d.runs().next().unwrap(), (28, &[9u8; 8][..]));
        assert_eq!(d, compute_diff_reference(&twin, &cur));
    }

    #[test]
    fn tracked_skips_clean_page_and_matches_full_scan() {
        let twin = Page::zeroed();
        let mut cur = twin.twin();
        let mut dirty = DirtyRanges::new();
        assert!(compute_diff_tracked(&twin, &cur, &dirty).is_empty());
        cur.write(40, &[1; 12]);
        dirty.add(40, 12);
        let tracked = compute_diff_tracked(&twin, &cur, &dirty);
        assert_eq!(tracked, compute_diff(&twin, &cur));
    }

    #[test]
    fn tracked_drops_value_identical_writes() {
        // A write that stores the bytes already there is tracked as
        // dirty but produces no run — exactly like the full scan.
        let mut twin = Page::zeroed();
        twin.write(100, &[3; 8]);
        let cur = twin.twin();
        let mut dirty = DirtyRanges::new();
        dirty.add(100, 8);
        assert!(compute_diff_tracked(&twin, &cur, &dirty).is_empty());
    }

    #[test]
    fn scratch_reuses_buffers_and_take_moves_out() {
        let twin = Page::zeroed();
        let mut cur = twin.twin();
        cur.write(0, &[1; 4]);
        let mut scratch = DiffScratch::new();
        assert_eq!(scratch.compute(&twin, &cur).run_count(), 1);
        cur.write(2048, &[2; 4]);
        let d = scratch.compute(&twin, &cur);
        assert_eq!(d.run_count(), 2);
        let owned = scratch.take();
        assert_eq!(owned.run_count(), 2);
        assert!(scratch.compute(&twin, &twin.twin()).is_empty());
    }

    /// Applies a write list to a copy of `base`, returning the result.
    fn write_all(base: &Page, writes: &[(usize, Vec<u8>)]) -> Page {
        let mut cur = base.twin();
        for (off, data) in writes {
            let len = data.len().min(PAGE_SIZE - off);
            cur.write(*off, &data[..len]);
        }
        cur
    }

    fn arb_writes(max_len: usize, count: usize) -> impl Strategy<Value = Vec<(usize, Vec<u8>)>> {
        proptest::collection::vec(
            (
                0usize..PAGE_SIZE,
                proptest::collection::vec(any::<u8>(), 1..max_len),
            ),
            0..count,
        )
    }

    proptest! {
        /// The fundamental diff invariant: applying diff(twin, cur) to
        /// a copy of the twin reproduces cur exactly.
        #[test]
        fn prop_diff_apply_round_trips(writes in arb_writes(64, 20)) {
            let twin = Page::zeroed();
            let cur = write_all(&twin, &writes);
            let d = compute_diff(&twin, &cur);
            let mut rebuilt = twin.clone();
            d.apply(&mut rebuilt);
            prop_assert_eq!(rebuilt, cur);
        }

        /// Runs are disjoint, word-aligned, ascending, and non-empty.
        #[test]
        fn prop_runs_are_canonical(writes in arb_writes(32, 16)) {
            let twin = Page::zeroed();
            let cur = write_all(&twin, &writes);
            let d = compute_diff(&twin, &cur);
            let mut prev_end = 0u32;
            for (i, (offset, data)) in d.runs().enumerate() {
                prop_assert!(!data.is_empty());
                prop_assert_eq!(offset as usize % WORD, 0);
                prop_assert_eq!(data.len() % WORD, 0);
                if i > 0 {
                    // A gap of at least one unmodified word separates runs.
                    prop_assert!(offset >= prev_end + WORD as u32);
                }
                prev_end = offset + data.len() as u32;
            }
        }

        /// The block scan is bit-identical to the reference word scan
        /// on arbitrary twins and write patterns, including sub-word
        /// writes and runs touching both page boundaries.
        #[test]
        fn prop_block_scan_matches_reference(
            base in arb_writes(48, 12),
            writes in arb_writes(48, 24),
            first in proptest::collection::vec(any::<u8>(), 0..8),
            last in proptest::collection::vec(any::<u8>(), 0..8),
        ) {
            let twin = write_all(&Page::zeroed(), &base);
            let mut all = writes;
            if !first.is_empty() {
                all.push((0, first)); // run starting at the page boundary
            }
            if !last.is_empty() {
                all.push((PAGE_SIZE - last.len(), last)); // run ending the page
            }
            let cur = write_all(&twin, &all);
            let fast = compute_diff(&twin, &cur);
            let reference = compute_diff_reference(&twin, &cur);
            prop_assert_eq!(&fast, &reference);
            let mut scratch = DiffScratch::new();
            prop_assert_eq!(scratch.compute(&twin, &cur), &reference);
        }

        /// The tracked scan equals the full scan whenever the dirty
        /// ranges cover every write (the single-writer case the
        /// protocol guarantees), for arbitrary sequences of sub-word
        /// and multi-word writes.
        #[test]
        fn prop_tracked_matches_full_scan(
            base in arb_writes(48, 12),
            writes in arb_writes(48, 24),
        ) {
            let twin = write_all(&Page::zeroed(), &base);
            let mut cur = twin.twin();
            let mut dirty = DirtyRanges::new();
            for (off, data) in &writes {
                let len = data.len().min(PAGE_SIZE - off);
                cur.write(*off, &data[..len]);
                dirty.add(*off as u32, len as u32);
            }
            let tracked = compute_diff_tracked(&twin, &cur, &dirty);
            let full = compute_diff(&twin, &cur);
            prop_assert_eq!(&tracked, &full);
            let mut scratch = DiffScratch::new();
            prop_assert_eq!(scratch.compute_tracked(&twin, &cur, &dirty), &full);
        }
    }
}
