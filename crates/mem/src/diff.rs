//! Twinning and diffing over real page contents.

use crate::addr::PAGE_SIZE;

/// Comparison granularity in bytes: diffs are computed word by word,
/// as in the original LRC implementations.
pub const WORD: usize = 4;

/// One shared page's contents.
///
/// # Example
///
/// ```
/// use genima_mem::Page;
/// let mut p = Page::zeroed();
/// p.write(8, &[1, 2, 3, 4]);
/// assert_eq!(&p.bytes()[8..12], &[1, 2, 3, 4]);
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct Page {
    bytes: Box<[u8]>,
}

impl Page {
    /// A page of zeros.
    pub fn zeroed() -> Page {
        Page {
            bytes: vec![0u8; PAGE_SIZE].into_boxed_slice(),
        }
    }

    /// The page contents.
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Writes `data` at byte `offset`.
    ///
    /// # Panics
    ///
    /// Panics if the write would run past the end of the page.
    pub fn write(&mut self, offset: usize, data: &[u8]) {
        self.bytes[offset..offset + data.len()].copy_from_slice(data);
    }

    /// Reads `len` bytes at `offset`.
    ///
    /// # Panics
    ///
    /// Panics if the read would run past the end of the page.
    pub fn read(&self, offset: usize, len: usize) -> &[u8] {
        &self.bytes[offset..offset + len]
    }

    /// Creates a twin: a snapshot taken before the first write of an
    /// interval.
    pub fn twin(&self) -> Page {
        self.clone()
    }
}

impl std::fmt::Debug for Page {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let nonzero = self.bytes.iter().filter(|&&b| b != 0).count();
        write!(f, "Page({nonzero} nonzero bytes)")
    }
}

impl Default for Page {
    fn default() -> Self {
        Page::zeroed()
    }
}

/// One contiguous run of modified bytes within a page.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Run {
    /// Byte offset of the run within the page (word aligned).
    pub offset: u32,
    /// The new contents of the run.
    pub data: Vec<u8>,
}

/// The word-granularity difference between a page and its twin.
///
/// In the Base protocol a diff is packed into one message per page; in
/// GeNIMA's *direct diffs* each [`Run`] becomes its own remote-deposit
/// message aimed straight at the home copy (§2, "Remote Deposit").
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Diff {
    /// Modified runs in ascending offset order.
    pub runs: Vec<Run>,
}

impl Diff {
    /// Number of contiguous modified runs — the number of messages
    /// direct diffs will send for this page.
    pub fn run_count(&self) -> usize {
        self.runs.len()
    }

    /// Total modified payload bytes.
    pub fn bytes(&self) -> u32 {
        self.runs.iter().map(|r| r.data.len() as u32).sum()
    }

    /// Returns `true` if the page did not change.
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }

    /// Applies the diff to `page` (typically the home copy).
    pub fn apply(&self, page: &mut Page) {
        for run in &self.runs {
            page.write(run.offset as usize, &run.data);
        }
    }
}

/// Compares `current` against its `twin` word by word and returns the
/// modified runs.
///
/// # Example
///
/// ```
/// use genima_mem::{compute_diff, Page};
/// let twin = Page::zeroed();
/// let mut cur = twin.twin();
/// cur.write(100, &[9; 8]);
/// let d = compute_diff(&twin, &cur);
/// assert_eq!(d.run_count(), 1);
/// assert_eq!(d.bytes(), 8);
/// let mut home = Page::zeroed();
/// d.apply(&mut home);
/// assert_eq!(home, cur);
/// ```
pub fn compute_diff(twin: &Page, current: &Page) -> Diff {
    let t = twin.bytes();
    let c = current.bytes();
    let mut runs = Vec::new();
    let mut open: Option<Run> = None;
    for w in (0..PAGE_SIZE).step_by(WORD) {
        let changed = t[w..w + WORD] != c[w..w + WORD];
        match (&mut open, changed) {
            (Some(run), true) => run.data.extend_from_slice(&c[w..w + WORD]),
            (Some(_), false) => runs.push(open.take().expect("open run")),
            (None, true) => {
                open = Some(Run {
                    offset: w as u32,
                    data: c[w..w + WORD].to_vec(),
                });
            }
            (None, false) => {}
        }
    }
    if let Some(run) = open {
        runs.push(run);
    }
    Diff { runs }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn identical_pages_have_empty_diff() {
        let p = Page::zeroed();
        let d = compute_diff(&p, &p.twin());
        assert!(d.is_empty());
        assert_eq!(d.bytes(), 0);
    }

    #[test]
    fn adjacent_words_merge_into_one_run() {
        let twin = Page::zeroed();
        let mut cur = twin.twin();
        cur.write(0, &[1; 4]);
        cur.write(4, &[2; 4]);
        let d = compute_diff(&twin, &cur);
        assert_eq!(d.run_count(), 1);
        assert_eq!(d.bytes(), 8);
    }

    #[test]
    fn separated_words_make_separate_runs() {
        let twin = Page::zeroed();
        let mut cur = twin.twin();
        cur.write(0, &[1; 4]);
        cur.write(100, &[2; 4]);
        cur.write(4092, &[3; 4]);
        let d = compute_diff(&twin, &cur);
        assert_eq!(d.run_count(), 3);
        assert_eq!(d.runs[0].offset, 0);
        assert_eq!(d.runs[1].offset, 100);
        assert_eq!(d.runs[2].offset, 4092);
    }

    #[test]
    fn sub_word_write_diffs_whole_word() {
        let twin = Page::zeroed();
        let mut cur = twin.twin();
        cur.write(9, &[7]); // one byte inside word 2
        let d = compute_diff(&twin, &cur);
        assert_eq!(d.run_count(), 1);
        assert_eq!(d.runs[0].offset, 8);
        assert_eq!(d.bytes(), 4);
    }

    #[test]
    fn apply_reconstructs_page() {
        let mut twin = Page::zeroed();
        twin.write(0, &[5; 64]);
        let mut cur = twin.twin();
        cur.write(10, &[1, 2, 3]);
        cur.write(2000, &[4; 100]);
        let d = compute_diff(&twin, &cur);
        let mut home = twin.clone();
        d.apply(&mut home);
        assert_eq!(home, cur);
    }

    proptest! {
        /// The fundamental diff invariant: applying diff(twin, cur) to
        /// a copy of the twin reproduces cur exactly.
        #[test]
        fn prop_diff_apply_round_trips(
            writes in proptest::collection::vec(
                (0usize..PAGE_SIZE, proptest::collection::vec(any::<u8>(), 1..64)),
                0..20,
            )
        ) {
            let twin = Page::zeroed();
            let mut cur = twin.twin();
            for (off, data) in &writes {
                let len = data.len().min(PAGE_SIZE - off);
                cur.write(*off, &data[..len]);
            }
            let d = compute_diff(&twin, &cur);
            let mut rebuilt = twin.clone();
            d.apply(&mut rebuilt);
            prop_assert_eq!(rebuilt, cur);
        }

        /// Runs are disjoint, word-aligned, ascending, and non-empty.
        #[test]
        fn prop_runs_are_canonical(
            writes in proptest::collection::vec(
                (0usize..PAGE_SIZE, proptest::collection::vec(any::<u8>(), 1..32)),
                0..16,
            )
        ) {
            let twin = Page::zeroed();
            let mut cur = twin.twin();
            for (off, data) in &writes {
                let len = data.len().min(PAGE_SIZE - off);
                cur.write(*off, &data[..len]);
            }
            let d = compute_diff(&twin, &cur);
            let mut prev_end = 0u32;
            for (i, run) in d.runs.iter().enumerate() {
                prop_assert!(!run.data.is_empty());
                prop_assert_eq!(run.offset as usize % WORD, 0);
                prop_assert_eq!(run.data.len() % WORD, 0);
                if i > 0 {
                    // A gap of at least one unmodified word separates runs.
                    prop_assert!(run.offset >= prev_end + WORD as u32);
                }
                prev_end = run.offset + run.data.len() as u32;
            }
        }
    }
}
