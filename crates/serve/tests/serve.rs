//! Property tests for the serving workload generators: seeded
//! determinism, Zipf skew sanity and open-loop arrival monotonicity.

use genima_apps::App;
use genima_proto::{Op, Topology};
use genima_serve::{GraphWalk, KvServe, OpenLoop, Pacing, Zipf};
use genima_sim::{Dur, SplitMix64, Time};
use proptest::prelude::*;
use proptest::test_runner::TestCaseError;

/// Drains every source of `app`'s spec into plain op vectors.
fn streams_of(app: &dyn App, topo: Topology) -> Vec<Vec<Op>> {
    app.spec(topo)
        .sources
        .into_iter()
        .map(|mut s| {
            let mut v = Vec::new();
            while let Some(op) = s.next_op() {
                v.push(op);
            }
            v
        })
        .collect()
}

/// Checks the open-loop invariants on one generated stream: the
/// `WaitUntil` pacing marks never move backwards and never before the
/// window start, and every `ServeEnd` echoes the issue time of the
/// arrival it closes.
fn assert_open_loop_shape(stream: &[Op], start: Time) -> Result<(), TestCaseError> {
    let mut last = start;
    let mut issued = None;
    for op in stream {
        match *op {
            Op::WaitUntil(t) => {
                prop_assert!(t >= start, "arrival {t:?} before the window start");
                prop_assert!(t >= last, "arrivals must be monotone: {t:?} < {last:?}");
                last = t;
                issued = Some(t);
            }
            Op::ServeEnd { issued: t, .. } => {
                prop_assert_eq!(Some(t), issued, "ServeEnd must echo its arrival time");
                issued = None;
            }
            _ => {}
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The same `(seed, shape)` produces bit-identical op streams on
    /// every call — the property the bench's cross-column stream-hash
    /// gate relies on — and a different seed shuffles the traffic.
    #[test]
    fn kv_streams_are_seed_deterministic(
        seed in any::<u64>(),
        keys_bits in 6u32..=12,
        ops in 1u64..300,
        read_pct in 0u32..=100,
    ) {
        let topo = Topology::new(2, 2);
        let mk = |s| {
            KvServe::new(1 << keys_bits, 0.99, read_pct, ops, Dur::from_ms(2)).with_seed(s)
        };
        let a = streams_of(&mk(seed), topo);
        prop_assert_eq!(&a, &streams_of(&mk(seed), topo));
        prop_assert_ne!(&a, &streams_of(&mk(seed ^ 0x5bd1_e995), topo));
        let total: usize = a
            .iter()
            .flatten()
            .filter(|op| matches!(op, Op::ServeEnd { .. }))
            .count();
        prop_assert_eq!(total as u64, ops, "every offered op must be generated");
    }

    /// Same determinism property for the graph-walk generator.
    #[test]
    fn walk_streams_are_seed_deterministic(
        seed in any::<u64>(),
        walk_len in 1usize..8,
        walks in 1u64..200,
    ) {
        let topo = Topology::new(4, 1);
        let mk = |s| GraphWalk::new(4096, walk_len, 0.99, walks, Dur::from_ms(2)).with_seed(s);
        let a = streams_of(&mk(seed), topo);
        prop_assert_eq!(&a, &streams_of(&mk(seed), topo));
        prop_assert_ne!(&a, &streams_of(&mk(seed ^ 0x5bd1_e995), topo));
    }

    /// Open-loop arrivals are monotone from the window start and every
    /// `ServeEnd` carries its own arrival's timestamp, for both
    /// workloads and both pacing disciplines.
    #[test]
    fn generated_arrivals_are_monotone(
        seed in any::<u64>(),
        ops in 1u64..300,
        uniform in any::<bool>(),
    ) {
        let start = Time::from_ns(500_000);
        let pacing = if uniform { Pacing::Uniform } else { Pacing::Poisson };
        let topo = Topology::new(2, 2);
        let kv = KvServe::new(1024, 0.99, 90, ops, Dur::from_ms(4))
            .with_seed(seed)
            .with_pacing(pacing)
            .with_start(start);
        for stream in streams_of(&kv, topo) {
            assert_open_loop_shape(&stream, start)?;
        }
        let gw = GraphWalk::new(4096, 4, 0.99, ops, Dur::from_ms(4))
            .with_seed(seed)
            .with_pacing(pacing)
            .with_start(start);
        for stream in streams_of(&gw, topo) {
            assert_open_loop_shape(&stream, start)?;
        }
    }

    /// Raw `OpenLoop` schedules are strictly ordered and respect the
    /// window start for any mean gap.
    #[test]
    fn raw_open_loop_is_monotone(
        seed in any::<u64>(),
        gap_ns in 1u64..100_000,
        uniform in any::<bool>(),
    ) {
        let start = Time::from_ns(1_000);
        let pacing = if uniform { Pacing::Uniform } else { Pacing::Poisson };
        let mut arr = OpenLoop::new(start, Dur::from_ns(gap_ns), pacing, SplitMix64::new(seed));
        let mut last = start;
        for _ in 0..256 {
            let t = arr.next_arrival();
            prop_assert!(t >= last);
            last = t;
        }
    }

    /// Chi-square-style sanity bound on the sampler: over coarse
    /// rank-decade bins, the observed histogram of a large sample stays
    /// close to the analytic Zipf mass. With 4000 draws the per-bin
    /// standard error is well under 1%, so the 5% slack catches a
    /// broken sampler (uniform, shifted, or inverted CDF) without ever
    /// flaking on an honest one — the RNG is deterministic per seed.
    #[test]
    fn zipf_sampler_matches_its_analytic_mass(
        seed in any::<u64>(),
        s_centi in 40u32..=140,
        n_bits in 6u32..=12,
    ) {
        let n = 1usize << n_bits;
        let z = Zipf::new(n, f64::from(s_centi) / 100.0);
        let mut rng = SplitMix64::new(seed);
        const DRAWS: usize = 4_000;
        let mut counts = vec![0u32; n];
        for _ in 0..DRAWS {
            let r = z.sample(&mut rng);
            prop_assert!(r < n, "sampled rank out of range");
            counts[r] += 1;
        }
        // Coarse bins: [0,1), [1,2), [2,4), ... doubling up to n.
        let mut lo = 0usize;
        let mut width = 1usize;
        while lo < n {
            let hi = (lo + width).min(n);
            let observed = counts[lo..hi].iter().map(|&c| c as f64).sum::<f64>()
                / DRAWS as f64;
            let expected: f64 = (lo..hi).map(|r| z.mass(r)).sum();
            prop_assert!(
                (observed - expected).abs() < 0.05,
                "bin [{lo},{hi}): observed {observed:.4} vs analytic {expected:.4}"
            );
            lo = hi;
            width *= 2;
        }
    }
}
