//! Serving workloads must survive concurrent churn (drop + outages)
//! on every evaluation column.

use genima::{run_app_configured, RunConfig};
use genima_apps::App;
use genima_fault::FaultPlan;
use genima_nic::NicId;
use genima_obs::Json;
use genima_proto::{Column, Topology};
use genima_serve::{GraphWalk, KvServe};
use genima_sim::{Dur, Time};

const START: Time = Time::from_ns(500_000);
const HORIZON: Dur = Dur::from_ms(20);

fn churn() -> FaultPlan {
    FaultPlan::new()
        .drop_rate(0.10)
        .outage(
            NicId::new(1),
            START + Dur::from_ms(2),
            START + Dur::from_ms(6),
        )
        .outage(
            NicId::new(2),
            START + Dur::from_ms(8),
            START + Dur::from_ms(12),
        )
        .outage(
            NicId::new(3),
            START + Dur::from_ms(14),
            START + Dur::from_ms(18),
        )
}

fn run_all_columns(app: &dyn App) {
    let topo = Topology::new(4, 1);
    for column in Column::all() {
        let cfg = RunConfig::from_column(topo, column)
            .with_seed(11)
            .with_faults(churn())
            .with_degraded(true);
        let out = run_app_configured(app, &cfg)
            .unwrap_or_else(|e| panic!("{} aborted under churn: {e}", column.name()));
        let merged = out.report.serve.merged();
        assert!(
            merged.count() > 0,
            "{}: no serve ops recorded",
            column.name()
        );
        if column.features.interrupt_free() {
            assert_eq!(
                out.report.counters.interrupts,
                0,
                "{}: host interrupts under churn",
                column.name()
            );
        }
        // The serve histogram must survive the JSON path too.
        let j = out.report.to_json_value().dump();
        assert!(
            j.contains("serve_latency"),
            "report json misses serve_latency"
        );
        let _ = Json::parse(&j).expect("report json must parse");
    }
}

#[test]
fn kv_survives_churn_on_every_column() {
    run_all_columns(
        &KvServe::new(1_024, 0.99, 90, 600, HORIZON)
            .with_seed(3)
            .with_start(START),
    );
}

#[test]
fn walk_survives_churn_on_every_column() {
    run_all_columns(
        &GraphWalk::new(4_096, 4, 0.99, 300, HORIZON)
            .with_seed(3)
            .with_start(START),
    );
}
