//! Deterministic open-loop arrival processes.
//!
//! An open-loop generator assigns every operation an *arrival time* in
//! advance, driven purely off simulated time and a seeded RNG — never
//! wall clock. The op streams pace themselves with
//! [`Op::WaitUntil`](genima_proto::Op::WaitUntil), so when the system
//! falls behind (a dropped packet, a node outage), load keeps arriving
//! and the backlog shows up as queueing delay in end-to-end latency.
//! A closed-loop generator would politely stop offering load exactly
//! when the system is slow — hiding the tail this subsystem exists to
//! measure (the coordinated-omission trap).

use genima_sim::{Dur, SplitMix64, Time};

/// Inter-arrival distribution of an open-loop stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pacing {
    /// Exponential gaps (Poisson process): bursty, memoryless — the
    /// standard serving-traffic model.
    Poisson,
    /// Gaps uniform in `[0, 2·mean)`: same offered rate, bounded
    /// burstiness — isolates protocol-induced tails from
    /// arrival-induced ones.
    Uniform,
}

/// A seeded open-loop arrival-time generator for one process.
///
/// Arrival times are monotone non-decreasing and depend only on
/// `(start, mean_gap, pacing, rng seed)`, so identical seeds produce
/// bit-identical schedules on every protocol column.
///
/// # Example
///
/// ```
/// use genima_serve::{OpenLoop, Pacing};
/// use genima_sim::{Dur, SplitMix64, Time};
///
/// let rng = SplitMix64::new(7);
/// let mut arr = OpenLoop::new(Time::from_ns(1_000), Dur::from_us(10), Pacing::Poisson, rng);
/// let a = arr.next_arrival();
/// let b = arr.next_arrival();
/// assert!(a >= Time::from_ns(1_000));
/// assert!(b >= a);
/// ```
#[derive(Debug, Clone)]
pub struct OpenLoop {
    start: Time,
    mean_gap_ns: f64,
    pacing: Pacing,
    rng: SplitMix64,
    /// Accumulated offset from `start`, kept in f64 nanoseconds so
    /// sub-nanosecond gap fractions do not bias long schedules.
    offset_ns: f64,
}

impl OpenLoop {
    /// A generator whose arrivals begin at `start` with the given mean
    /// inter-arrival gap.
    ///
    /// # Panics
    ///
    /// Panics if `mean_gap` is zero (an infinite rate).
    pub fn new(start: Time, mean_gap: Dur, pacing: Pacing, rng: SplitMix64) -> OpenLoop {
        assert!(mean_gap > Dur::ZERO, "open-loop mean gap must be positive");
        OpenLoop {
            start,
            mean_gap_ns: mean_gap.as_ns() as f64,
            pacing,
            rng,
            offset_ns: 0.0,
        }
    }

    /// The next arrival time. Monotone non-decreasing across calls.
    pub fn next_arrival(&mut self) -> Time {
        let u = self.rng.next_f64();
        let gap = match self.pacing {
            // u in [0,1) so 1-u in (0,1]: the log is finite and the
            // gap non-negative.
            Pacing::Poisson => -(1.0 - u).ln() * self.mean_gap_ns,
            Pacing::Uniform => 2.0 * u * self.mean_gap_ns,
        };
        self.offset_ns += gap;
        self.start + Dur::from_ns(self.offset_ns as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arrivals_are_monotone_and_deterministic() {
        for pacing in [Pacing::Poisson, Pacing::Uniform] {
            let mk = || {
                OpenLoop::new(
                    Time::from_ns(500),
                    Dur::from_us(5),
                    pacing,
                    SplitMix64::new(42),
                )
            };
            let mut a = mk();
            let mut b = mk();
            let mut prev = Time::ZERO;
            for _ in 0..1_000 {
                let t = a.next_arrival();
                assert_eq!(t, b.next_arrival());
                assert!(t >= prev);
                prev = t;
            }
        }
    }

    #[test]
    fn mean_rate_is_roughly_the_configured_one() {
        for pacing in [Pacing::Poisson, Pacing::Uniform] {
            let mut arr = OpenLoop::new(Time::ZERO, Dur::from_us(10), pacing, SplitMix64::new(9));
            let n = 10_000;
            let mut last = Time::ZERO;
            for _ in 0..n {
                last = arr.next_arrival();
            }
            let mean_us = last.as_us() / n as f64;
            assert!(
                (8.0..12.0).contains(&mean_us),
                "{pacing:?}: mean gap {mean_us:.2}us, want ~10us"
            );
        }
    }

    #[test]
    #[should_panic(expected = "mean gap must be positive")]
    fn zero_gap_panics() {
        OpenLoop::new(Time::ZERO, Dur::ZERO, Pacing::Poisson, SplitMix64::new(1));
    }
}
