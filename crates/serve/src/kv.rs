//! A partitioned in-memory key-value store served over SVM pages.
//!
//! Keys live in fixed-size value cells packed into pages; each page is
//! one *shard* guarded by its own lock and homed by the block
//! distribution, so a key has a well-defined home node (home-node
//! partitioning). Key popularity is Zipf-skewed and ranks are
//! scattered bijectively across shards, so the hot set spreads over
//! the cluster instead of hammering page 0.
//!
//! Every operation — read or write — takes its shard lock around the
//! access. Under lazy release consistency an unsynchronized read
//! would be a data race (and the `genima-check` race detector would
//! rightly flag it); per-shard locking is also simply how partitioned
//! stores serialize writers. The op streams are therefore race-free
//! by construction, and the protocol columns differ only in how
//! expensive those locks and page fetches are.

use genima_apps::{App, Arrival, Layout, OpsBuilder, WorkloadSpec};
use genima_proto::{ServeClass, Topology, PAGE_SIZE};
use genima_sim::{Dur, SplitMix64, Time};

use crate::arrival::{OpenLoop, Pacing};
use crate::zipf::{scatter, Zipf};

/// Bytes per stored value; 64 values pack one 4 KB page (= one shard).
pub const VALUE_BYTES: usize = 64;

/// Open-loop Zipf key-value serving workload.
///
/// # Example
///
/// ```
/// use genima_serve::KvServe;
/// use genima_proto::Topology;
/// use genima_apps::App;
///
/// let kv = KvServe::new(1024, 0.99, 90, 400, genima_sim::Dur::from_ms(4));
/// let spec = kv.spec(Topology::new(2, 2));
/// assert_eq!(spec.sources.len(), 4);
/// assert_eq!(spec.locks, 1024 / 64);
/// ```
#[derive(Debug, Clone)]
pub struct KvServe {
    /// Total keys; must be a power of two and at least one page's
    /// worth so the rank scatter stays a bijection.
    keys: usize,
    /// Zipf skew of key popularity.
    zipf_s: f64,
    /// Percentage of operations that are reads (0..=100).
    read_pct: u32,
    /// Operations offered across the whole cluster.
    ops: u64,
    /// Simulated span the arrival process covers.
    horizon: Dur,
    /// Absolute time the first arrival may occur (after warmup).
    start: Time,
    /// Inter-arrival distribution.
    pacing: Pacing,
    /// Host-side service compute per op (request parse + hash), µs.
    service_us: f64,
    /// Seed for arrivals, key choice and the read/write coin.
    seed: u64,
}

impl KvServe {
    /// A store with the given shape; arrivals default to Poisson
    /// starting at 500 µs, 0.3 µs host service per op, seed 0.
    ///
    /// # Panics
    ///
    /// Panics unless `keys` is a power of two covering at least one
    /// page, or if `read_pct` exceeds 100.
    pub fn new(keys: usize, zipf_s: f64, read_pct: u32, ops: u64, horizon: Dur) -> KvServe {
        let per_page = PAGE_SIZE / VALUE_BYTES;
        assert!(
            keys.is_power_of_two() && keys >= per_page,
            "keys must be a power of two filling at least one page"
        );
        assert!(read_pct <= 100, "read_pct is a percentage");
        KvServe {
            keys,
            zipf_s,
            read_pct,
            ops,
            horizon,
            start: Time::from_ns(500_000),
            pacing: Pacing::Poisson,
            service_us: 0.3,
            seed: 0,
        }
    }

    /// Replaces the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> KvServe {
        self.seed = seed;
        self
    }

    /// Replaces the inter-arrival distribution.
    pub fn with_pacing(mut self, pacing: Pacing) -> KvServe {
        self.pacing = pacing;
        self
    }

    /// Replaces the arrival-window start time.
    pub fn with_start(mut self, start: Time) -> KvServe {
        self.start = start;
        self
    }

    /// Keys per shard page.
    fn keys_per_page(&self) -> usize {
        PAGE_SIZE / VALUE_BYTES
    }
}

impl App for KvServe {
    fn name(&self) -> &'static str {
        "KvServe"
    }

    fn problem(&self) -> String {
        format!(
            "{} keys, Zipf {:.2}, {}% reads, {} ops over {:.1}ms",
            self.keys,
            self.zipf_s,
            self.read_pct,
            self.ops,
            self.horizon.as_ms()
        )
    }

    fn spec(&self, topo: Topology) -> WorkloadSpec {
        let nprocs = topo.procs();
        let kpp = self.keys_per_page();
        let shards = self.keys / kpp;
        let mut layout = Layout::new();
        let store = layout.alloc_pages(shards);
        let zipf = Zipf::new(self.keys, self.zipf_s);

        let base_ops = self.ops / nprocs as u64;
        let extra = (self.ops % nprocs as u64) as usize;
        let mut sources = Vec::with_capacity(nprocs);
        for p in 0..nprocs {
            let ops_pp = base_ops + u64::from(p < extra);
            let mut rng =
                SplitMix64::new(self.seed ^ 0x6b76_7365_7276_6500u64.wrapping_add(p as u64));
            let arr_rng = rng.split();
            let mut b = OpsBuilder::new();
            b.barrier(0);
            if let Some(gap) = self.horizon.as_ns().checked_div(ops_pp) {
                let mean_gap = Dur::from_ns(gap.max(1));
                let mut arr = OpenLoop::new(self.start, mean_gap, self.pacing, arr_rng);
                for _ in 0..ops_pp {
                    let t = arr.next_arrival();
                    let key = scatter(zipf.sample(&mut rng), self.keys);
                    let shard = key / kpp;
                    let addr = store.addr((key * VALUE_BYTES) as u64);
                    let is_read = rng.next_below(100) < self.read_pct as u64;
                    b.wait_until(t);
                    b.compute_us(self.service_us);
                    b.acquire(shard);
                    if is_read {
                        b.read(addr, VALUE_BYTES as u32);
                    } else {
                        b.write(addr, VALUE_BYTES as u32);
                    }
                    b.release(shard);
                    b.serve_end(
                        if is_read {
                            ServeClass::Read
                        } else {
                            ServeClass::Write
                        },
                        t,
                    );
                }
            }
            sources.push(b.into_source());
        }

        WorkloadSpec {
            sources,
            homes: store.homes_blocked(topo),
            locks: shards,
            bus_demand_per_proc: 25_000_000,
            warmup_barrier: Some(genima_proto::BarrierId::new(0)),
            arrival: Arrival::Open {
                horizon: self.horizon,
                offered_ops: self.ops,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use genima_proto::Op;

    fn ops_of(kv: &KvServe, topo: Topology) -> Vec<Vec<Op>> {
        kv.spec(topo)
            .sources
            .into_iter()
            .map(|mut s| {
                let mut v = Vec::new();
                while let Some(op) = s.next_op() {
                    v.push(op);
                }
                v
            })
            .collect()
    }

    #[test]
    fn streams_are_deterministic_and_seed_sensitive() {
        let topo = Topology::new(2, 2);
        let kv = KvServe::new(1024, 0.99, 90, 200, Dur::from_ms(2)).with_seed(5);
        let a = ops_of(&kv, topo);
        let b = ops_of(&kv, topo);
        assert_eq!(a, b, "same seed must give bit-identical streams");
        let c = ops_of(
            &KvServe::new(1024, 0.99, 90, 200, Dur::from_ms(2)).with_seed(6),
            topo,
        );
        assert_ne!(a, c, "a different seed must shuffle the traffic");
    }

    #[test]
    fn every_access_is_lock_protected_and_ends_the_op() {
        let topo = Topology::new(2, 1);
        let ops = ops_of(&KvServe::new(512, 0.8, 50, 100, Dur::from_ms(1)), topo);
        for stream in &ops {
            let mut held: Option<usize> = None;
            for op in stream {
                match op {
                    Op::Acquire(l) => {
                        assert!(held.is_none());
                        held = Some(l.index());
                    }
                    Op::Release(l) => {
                        assert_eq!(held, Some(l.index()));
                        held = None;
                    }
                    Op::Read { .. } | Op::Write { .. } => {
                        assert!(held.is_some(), "bare access outside the shard lock");
                    }
                    Op::ServeEnd { .. } => assert!(held.is_none()),
                    _ => {}
                }
            }
            assert!(held.is_none());
        }
        let serves: usize = ops
            .iter()
            .flatten()
            .filter(|op| matches!(op, Op::ServeEnd { .. }))
            .count();
        assert_eq!(serves, 100);
    }

    #[test]
    fn offered_load_is_reported_on_the_spec() {
        let kv = KvServe::new(1024, 0.99, 90, 4_000, Dur::from_ms(4));
        let spec = kv.spec(Topology::new(2, 2));
        assert_eq!(
            spec.arrival,
            Arrival::Open {
                horizon: Dur::from_ms(4),
                offered_ops: 4_000
            }
        );
        assert!((spec.arrival.offered_mops() - 1.0).abs() < 1e-9);
    }
}
