//! Open-loop serving workloads over shared virtual memory.
//!
//! The paper's evaluation (and every SPLASH-2 app in `genima-apps`)
//! is *closed-loop*: each process computes as fast as the protocol
//! lets it, so protocol slowness throttles offered load and shows up
//! as a longer finish time. Serving systems are the opposite regime:
//! requests arrive on their own schedule whether or not the previous
//! one finished, and the interesting metric is the *latency tail*
//! under that sustained pressure — especially while packets drop and
//! nodes blink in and out (churn).
//!
//! This crate adds that regime on top of the unchanged protocol
//! stack:
//!
//! * [`OpenLoop`]/[`Pacing`] — seeded Poisson or uniform arrival
//!   schedules driven purely off simulated time
//!   ([`Op::WaitUntil`](genima_proto::Op::WaitUntil) pacing), so the
//!   coordinated-omission trap of closed-loop measurement is avoided
//!   by construction;
//! * [`Zipf`] — skewed key/vertex popularity with a bijective
//!   [`scatter`] so the hot set spreads across shards;
//! * [`KvServe`] — a partitioned key-value store (per-page shards,
//!   per-shard locks, home-node partitioning, configurable read/write
//!   mix);
//! * [`GraphWalk`] — Zipf-seeded random walks of dependent page reads
//!   over an adjacency region, lock-free and read-only.
//!
//! Both workloads implement [`genima_apps::App`], so all six protocol
//! columns run them unchanged; per-op latency lands in
//! `RunReport::serve` via [`Op::ServeEnd`](genima_proto::Op::ServeEnd)
//! and the `serving_bench` bin gates the tails
//! (`BENCH_serving.json`).

mod arrival;
mod kv;
mod walk;
mod zipf;

pub use arrival::{OpenLoop, Pacing};
pub use kv::{KvServe, VALUE_BYTES};
pub use walk::{GraphWalk, ROW_BYTES};
pub use zipf::{scatter, Zipf};
