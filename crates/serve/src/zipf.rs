//! Seeded Zipf-distributed popularity sampling.

use genima_sim::SplitMix64;

/// A Zipf(s) distribution over ranks `0..n` (rank 0 most popular),
/// sampled by binary search over a precomputed CDF.
///
/// Skew `s = 0` degenerates to uniform; web-style key popularity is
/// usually quoted around `s ≈ 0.99`.
///
/// # Example
///
/// ```
/// use genima_serve::Zipf;
/// use genima_sim::SplitMix64;
///
/// let z = Zipf::new(1024, 0.99);
/// let mut rng = SplitMix64::new(3);
/// let rank = z.sample(&mut rng);
/// assert!(rank < 1024);
/// ```
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
    s: f64,
}

impl Zipf {
    /// Builds the distribution over `n` ranks with skew `s`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or `s` is negative/non-finite.
    pub fn new(n: usize, s: f64) -> Zipf {
        assert!(n > 0, "Zipf needs at least one rank");
        assert!(
            s >= 0.0 && s.is_finite(),
            "Zipf skew must be finite and >= 0"
        );
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for rank in 1..=n {
            acc += (rank as f64).powf(-s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Zipf { cdf, s }
    }

    /// Number of ranks.
    pub fn n(&self) -> usize {
        self.cdf.len()
    }

    /// The configured skew.
    pub fn skew(&self) -> f64 {
        self.s
    }

    /// Probability mass of rank `r` (0-indexed).
    pub fn mass(&self, r: usize) -> f64 {
        let lo = if r == 0 { 0.0 } else { self.cdf[r - 1] };
        self.cdf[r] - lo
    }

    /// Draws one rank in `0..n`.
    pub fn sample(&self, rng: &mut SplitMix64) -> usize {
        let u = rng.next_f64();
        // First rank whose CDF reaches u. partition_point avoids the
        // NaN hazard of a comparator-based binary search on floats.
        let i = self.cdf.partition_point(|&c| c < u);
        i.min(self.cdf.len() - 1)
    }
}

/// Bijectively scatters a popularity rank onto a key id so that hot
/// ranks land on different shards/pages instead of clustering at the
/// front of the address space. Requires `n` to be a power of two; the
/// odd multiplier makes the map invertible mod `n`.
pub fn scatter(rank: usize, n: usize) -> usize {
    debug_assert!(n.is_power_of_two());
    rank.wrapping_mul(0x9E37_79B9) & (n - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masses_sum_to_one_and_decrease() {
        let z = Zipf::new(64, 1.0);
        let total: f64 = (0..64).map(|r| z.mass(r)).sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert!(z.mass(0) > z.mass(1));
        assert!(z.mass(1) > z.mass(63));
    }

    #[test]
    fn zero_skew_is_uniform() {
        let z = Zipf::new(16, 0.0);
        for r in 0..16 {
            assert!((z.mass(r) - 1.0 / 16.0).abs() < 1e-12);
        }
    }

    #[test]
    fn samples_stay_in_range_and_favor_the_head() {
        let z = Zipf::new(256, 0.99);
        let mut rng = SplitMix64::new(11);
        let mut head = 0u32;
        for _ in 0..10_000 {
            let r = z.sample(&mut rng);
            assert!(r < 256);
            if r < 26 {
                head += 1;
            }
        }
        // Zipf(0.99) over 256 ranks puts well over a third of the mass
        // on the top 10% of ranks; uniform would put 10% there.
        assert!(head > 3_000, "head hits {head}/10000");
    }

    #[test]
    fn scatter_is_a_bijection() {
        let n = 1024;
        let mut seen = vec![false; n];
        for r in 0..n {
            let k = scatter(r, n);
            assert!(!seen[k], "collision at {k}");
            seen[k] = true;
        }
    }
}
