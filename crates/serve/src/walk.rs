//! Random graph walks over adjacency rows laid out across SVM pages.
//!
//! The graph is synthetic and arithmetic: vertex `v`'s adjacency row
//! lives at a fixed offset in the shared region, and the walk's next
//! hop is a seeded hash of the current vertex — the *data* never
//! drives control flow (the simulator does not model values), but the
//! *page access pattern* is exactly that of a pointer-chasing walk:
//! `walk_len` dependent reads that each may fault on a different home
//! node. Walk start vertices are Zipf-skewed (hot vertices), so
//! popular rows stay cached while the tail of each walk wanders cold
//! pages.
//!
//! The graph is read-only after initialization, so walks take no
//! locks and the workload is race-free by construction.

use genima_apps::{App, Arrival, Layout, OpsBuilder, WorkloadSpec};
use genima_proto::{ServeClass, Topology, PAGE_SIZE};
use genima_sim::{Dur, SplitMix64, Time};

use crate::arrival::{OpenLoop, Pacing};
use crate::zipf::{scatter, Zipf};

/// Bytes per adjacency row (vertex id + a handful of neighbor ids).
pub const ROW_BYTES: usize = 64;

/// Open-loop random-walk serving workload.
///
/// # Example
///
/// ```
/// use genima_serve::GraphWalk;
/// use genima_proto::Topology;
/// use genima_apps::App;
///
/// let gw = GraphWalk::new(4096, 8, 0.99, 200, genima_sim::Dur::from_ms(2));
/// let spec = gw.spec(Topology::new(2, 2));
/// assert_eq!(spec.sources.len(), 4);
/// assert_eq!(spec.locks, 0);
/// ```
#[derive(Debug, Clone)]
pub struct GraphWalk {
    /// Vertices; must be a power of two of at least one page of rows.
    vertices: usize,
    /// Reads per walk (dependent hops).
    walk_len: usize,
    /// Zipf skew of walk start vertices.
    zipf_s: f64,
    /// Walks offered across the whole cluster.
    walks: u64,
    /// Simulated span the arrival process covers.
    horizon: Dur,
    /// Absolute time the first arrival may occur (after warmup).
    start: Time,
    /// Inter-arrival distribution.
    pacing: Pacing,
    /// Host-side compute per hop (neighbor pick), µs.
    hop_us: f64,
    /// Seed for arrivals, start vertices and hop choices.
    seed: u64,
}

impl GraphWalk {
    /// A walk workload with the given shape; arrivals default to
    /// Poisson starting at 500 µs, 0.1 µs per hop, seed 0.
    ///
    /// # Panics
    ///
    /// Panics unless `vertices` is a power of two covering at least
    /// one page of rows, or if `walk_len` is zero.
    pub fn new(
        vertices: usize,
        walk_len: usize,
        zipf_s: f64,
        walks: u64,
        horizon: Dur,
    ) -> GraphWalk {
        let per_page = PAGE_SIZE / ROW_BYTES;
        assert!(
            vertices.is_power_of_two() && vertices >= per_page,
            "vertices must be a power of two filling at least one page"
        );
        assert!(walk_len > 0, "walks must take at least one hop");
        GraphWalk {
            vertices,
            walk_len,
            zipf_s,
            walks,
            horizon,
            start: Time::from_ns(500_000),
            pacing: Pacing::Poisson,
            hop_us: 0.1,
            seed: 0,
        }
    }

    /// Replaces the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> GraphWalk {
        self.seed = seed;
        self
    }

    /// Replaces the inter-arrival distribution.
    pub fn with_pacing(mut self, pacing: Pacing) -> GraphWalk {
        self.pacing = pacing;
        self
    }

    /// Replaces the arrival-window start time.
    pub fn with_start(mut self, start: Time) -> GraphWalk {
        self.start = start;
        self
    }
}

/// The seeded hash stepping a walk from vertex `v` (mask = vertices-1).
fn next_hop(v: usize, salt: u64, mask: usize) -> usize {
    (v as u64)
        .wrapping_mul(0x5851_F42D_4C95_7F2D)
        .wrapping_add(salt)
        .wrapping_mul(0x9E37_79B9_7F4A_7C15) as usize
        & mask
}

impl App for GraphWalk {
    fn name(&self) -> &'static str {
        "GraphWalk"
    }

    fn problem(&self) -> String {
        format!(
            "{} vertices, {}-hop walks, Zipf {:.2}, {} walks over {:.1}ms",
            self.vertices,
            self.walk_len,
            self.zipf_s,
            self.walks,
            self.horizon.as_ms()
        )
    }

    fn spec(&self, topo: Topology) -> WorkloadSpec {
        let nprocs = topo.procs();
        let rows_per_page = PAGE_SIZE / ROW_BYTES;
        let pages = self.vertices / rows_per_page;
        let mut layout = Layout::new();
        let adj = layout.alloc_pages(pages);
        let zipf = Zipf::new(self.vertices, self.zipf_s);
        let mask = self.vertices - 1;

        let base_walks = self.walks / nprocs as u64;
        let extra = (self.walks % nprocs as u64) as usize;
        let mut sources = Vec::with_capacity(nprocs);
        for p in 0..nprocs {
            let walks_pp = base_walks + u64::from(p < extra);
            let mut rng =
                SplitMix64::new(self.seed ^ 0x6777_616c_6b00_0000u64.wrapping_add(p as u64));
            let arr_rng = rng.split();
            let mut b = OpsBuilder::new();
            b.barrier(0);
            if let Some(gap) = self.horizon.as_ns().checked_div(walks_pp) {
                let mean_gap = Dur::from_ns(gap.max(1));
                let mut arr = OpenLoop::new(self.start, mean_gap, self.pacing, arr_rng);
                for _ in 0..walks_pp {
                    let t = arr.next_arrival();
                    let mut v = scatter(zipf.sample(&mut rng), self.vertices);
                    b.wait_until(t);
                    for _ in 0..self.walk_len {
                        b.read(adj.addr((v * ROW_BYTES) as u64), ROW_BYTES as u32);
                        b.compute_us(self.hop_us);
                        v = next_hop(v, rng.next_u64(), mask);
                    }
                    b.serve_end(ServeClass::Walk, t);
                }
            }
            sources.push(b.into_source());
        }

        WorkloadSpec {
            sources,
            homes: adj.homes_blocked(topo),
            locks: 0,
            bus_demand_per_proc: 25_000_000,
            warmup_barrier: Some(genima_proto::BarrierId::new(0)),
            arrival: Arrival::Open {
                horizon: self.horizon,
                offered_ops: self.walks,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use genima_proto::Op;

    #[test]
    fn walks_are_dependent_reads_with_no_locks() {
        let gw = GraphWalk::new(4096, 6, 0.99, 40, Dur::from_ms(1)).with_seed(2);
        let spec = gw.spec(Topology::new(2, 1));
        let mut walks = 0;
        for mut src in spec.sources {
            let mut reads_since_wait = 0;
            while let Some(op) = src.next_op() {
                match op {
                    Op::Acquire(_) | Op::Release(_) => panic!("walks take no locks"),
                    Op::WaitUntil(_) => reads_since_wait = 0,
                    Op::Read { .. } => reads_since_wait += 1,
                    Op::ServeEnd { .. } => {
                        assert_eq!(reads_since_wait, 6, "every walk takes walk_len hops");
                        walks += 1;
                    }
                    _ => {}
                }
            }
        }
        assert_eq!(walks, 40);
    }

    #[test]
    fn hop_function_stays_in_range() {
        for v in [0usize, 1, 4095] {
            for salt in [0u64, 7, u64::MAX] {
                assert!(next_hop(v, salt, 4095) < 4096);
            }
        }
    }
}
