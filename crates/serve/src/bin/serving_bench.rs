//! `serving_bench` — open-loop serving workloads under concurrent
//! churn, with a self-gating tail-latency report.
//!
//! ```text
//! serving_bench [--seed N] [--nodes NODES] [--ops OPS] [--json PATH]
//! ```
//!
//! Runs the two `genima-serve` workloads — the Zipf partitioned
//! key-value store and the graph-walk service — on all six evaluation
//! columns while a churn fault plan is live: **10% packet drop** for
//! the whole run plus **cycling per-node outage windows** (4 ms of
//! total silence per window, round-robin over the non-manager nodes).
//! The windows sit far below the ~38 ms retransmission give-up
//! budget, so churn manifests as retry storms and multi-millisecond
//! stalls, not peer death; degraded mode is armed anyway so an
//! unlucky seed degrades instead of aborting.
//!
//! Self-gates (exit 1 on violation, so CI runs this as a smoke gate):
//!
//! * every column completes under churn;
//! * GeNIMA and GeNIMA-2025 take **zero host interrupts** and keep
//!   merged p99 under a per-column bound ([`P99_BOUND_GENIMA`],
//!   [`P99_BOUND_2025`]) — bounded tails without any asynchronous
//!   protocol processing;
//! * Base's merged p99 is at least [`TAIL_RATIO`]× GeNIMA's on the
//!   same stream — the visible tail collapse of interrupt-driven
//!   protocol processing under churn;
//! * the generated op stream hashes identically across all six
//!   columns (the workload seam leaks nothing protocol-specific);
//! * a repeated GeNIMA run is bit-identical (seeded determinism).
//!
//! With `--json PATH` the sweep is written as `BENCH_serving.json`;
//! `xtask obs-schema` re-checks the shape and the gates.

use genima::{run_app_configured, ConfiguredOutcome, RunConfig, TextTable};
use genima_apps::App;
use genima_fault::FaultPlan;
use genima_nic::NicId;
use genima_obs::Json;
use genima_proto::{Column, Topology};
use genima_serve::{GraphWalk, KvServe};
use genima_sim::{Dur, RunSeed, Time};

/// Merged-p99 gate for GeNIMA (1999 NI). An outage window freezes a
/// victim node for 4 ms and the firmware's retransmission backoff
/// (150 µs doubling per attempt) overshoots the window's end by up to
/// ~9.6 ms before the next retry, so ops queued behind a blackout
/// legally see tens of milliseconds. The gate — one power-of-two
/// histogram bucket above that recovery overshoot — says the tail
/// stays on the scale of the injected disturbance instead of
/// collapsing open-loop the way Base does.
const P99_BOUND_GENIMA: Dur = Dur::from_ns(1 << 25); // 33.6 ms

/// Merged-p99 gate for GeNIMA-2025: the modern RNIC recovers from the
/// same blackouts at finer timeout granularity, so its tail must stay
/// a bucket tighter.
const P99_BOUND_2025: Dur = Dur::from_ns(1 << 24); // 16.8 ms

/// Base must be at least this many times worse than GeNIMA at p99.
const TAIL_RATIO: f64 = 2.0;

/// Arrival window the ops are spread over.
const HORIZON: Dur = Dur::from_ms(40);

/// First arrival (leaves room for warmup on every column).
const START: Time = Time::from_ns(500_000);

struct Args {
    seed: u64,
    nodes: usize,
    ops: u64,
    json: Option<String>,
}

fn usage() -> ! {
    eprintln!("usage: serving_bench [--seed N] [--nodes NODES] [--ops OPS] [--json PATH]");
    std::process::exit(2)
}

fn parse_args() -> Args {
    let mut args = Args {
        seed: RunSeed::default().value(),
        nodes: 4,
        ops: 800,
        json: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let value = it.next().unwrap_or_else(|| usage());
        if flag.as_str() == "--json" {
            args.json = Some(value);
            continue;
        }
        let parsed: u64 = value.parse().unwrap_or_else(|_| usage());
        match flag.as_str() {
            "--seed" => args.seed = parsed,
            "--nodes" => args.nodes = parsed as usize,
            "--ops" => args.ops = parsed,
            _ => usage(), // unknown flag; lint: allow-wildcard
        }
    }
    args
}

/// The churn plan: 10% drop for the whole run, plus 4 ms outage
/// windows cycling round-robin over nodes 1..n (node 0 hosts the
/// barrier manager and the first page homes, so it stays up — churn
/// hits the replicas, as maintenance drains do). Every window is far
/// below the ~38 ms give-up budget.
fn churn_plan(nodes: usize) -> FaultPlan {
    let mut plan = FaultPlan::new().drop_rate(0.10);
    if nodes < 2 {
        return plan;
    }
    let window = Dur::from_ms(4);
    let gap = Dur::from_ms(4);
    let mut from = START + Dur::from_ms(2);
    let mut victim = 1usize;
    while from + window < START + HORIZON {
        plan = plan.outage(NicId::new(victim), from, from + window);
        from = from + window + gap;
        victim = victim % (nodes - 1) + 1;
    }
    plan
}

/// FNV-1a over the Debug rendering of every op in every stream: a
/// cheap, stable fingerprint of the generated traffic.
fn stream_hash(app: &dyn App, topo: Topology) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for mut src in app.spec(topo).sources {
        while let Some(op) = src.next_op() {
            for b in format!("{op:?}").bytes() {
                h = (h ^ b as u64).wrapping_mul(0x100_0000_01b3);
            }
        }
        h = (h ^ 0xff).wrapping_mul(0x100_0000_01b3);
    }
    h
}

fn run_one(
    app: &dyn App,
    topo: Topology,
    column: Column,
    seed: u64,
) -> Result<ConfiguredOutcome, genima::ProtoError> {
    let cfg = RunConfig::from_column(topo, column)
        .with_seed(seed)
        .with_faults(churn_plan(topo.nodes))
        .with_degraded(true);
    run_app_configured(app, &cfg)
}

fn main() {
    let args = parse_args();
    let topo = Topology::new(args.nodes, 1);
    let kv = KvServe::new(4_096, 0.99, 90, args.ops, HORIZON)
        .with_seed(args.seed)
        .with_start(START);
    let walk = GraphWalk::new(8_192, 6, 0.99, args.ops / 2, HORIZON)
        .with_seed(args.seed)
        .with_start(START);
    println!(
        "serving bench: {} nodes, seed {:#x}, 10% drop + cycling 4ms outages",
        args.nodes, args.seed
    );
    println!("  kv:   {}", kv.problem());
    println!("  walk: {}", walk.problem());

    let mut table = TextTable::new(vec![
        "workload", "column", "time(ms)", "Mops", "p50us", "p99us", "p999us", "failed", "retrans",
        "intr",
    ]);
    let mut failures = 0u32;
    let mut rows = Vec::new();
    let workloads: [(&str, &dyn App); 2] = [("kv", &kv), ("walk", &walk)];
    for (wname, app) in workloads {
        let hash = stream_hash(app, topo);
        let mut genima_p99_us = 0.0f64;
        let mut base_p99_us = 0.0f64;
        for column in Column::all() {
            // The workload seam must leak nothing protocol-specific:
            // the same app generates bit-identical traffic no matter
            // which column will consume it.
            let rehash = stream_hash(app, topo);
            if rehash != hash {
                eprintln!("FAIL {wname}/{}: op stream hash drifted", column.name());
                failures += 1;
            }
            let out = match run_one(app, topo, column, args.seed) {
                Ok(out) => out,
                Err(e) => {
                    eprintln!("FAIL {wname}/{}: run aborted: {e}", column.name());
                    failures += 1;
                    continue;
                }
            };
            let report = &out.report;
            let merged = report.serve.merged();
            let p99_us = merged.p99().as_us();
            let par = report.parallel_time();
            let mops = if par > Dur::ZERO {
                merged.count() as f64 / (par.as_ns() as f64 * 1e-9) / 1e6
            } else {
                0.0
            };
            let interrupt_free = column.features.interrupt_free();
            let p99_bound = if !interrupt_free {
                None
            } else if column.name() == "GeNIMA-2025" {
                Some(P99_BOUND_2025)
            } else {
                Some(P99_BOUND_GENIMA)
            };
            if interrupt_free && report.counters.interrupts != 0 {
                eprintln!(
                    "FAIL {wname}/{}: {} host interrupts under churn (must be 0)",
                    column.name(),
                    report.counters.interrupts
                );
                failures += 1;
            }
            if let Some(bound) = p99_bound {
                if merged.p99() > bound {
                    eprintln!(
                        "FAIL {wname}/{}: p99 {:.0}us exceeds the {:.0}us gate",
                        column.name(),
                        p99_us,
                        bound.as_us()
                    );
                    failures += 1;
                }
            }
            if column.name() == "GeNIMA" {
                genima_p99_us = p99_us;
                // Seeded determinism: the same configuration must
                // reproduce the run bit-for-bit.
                match run_one(app, topo, column, args.seed) {
                    Ok(again) => {
                        if again.report.finish != report.finish
                            || again.report.serve != report.serve
                        {
                            eprintln!("FAIL {wname}/GeNIMA: repeat run not bit-identical");
                            failures += 1;
                        }
                    }
                    Err(e) => {
                        eprintln!("FAIL {wname}/GeNIMA: repeat run aborted: {e}");
                        failures += 1;
                    }
                }
            }
            if column.name() == "Base" {
                base_p99_us = p99_us;
            }
            table.row(vec![
                wname.to_string(),
                column.name().to_string(),
                format!("{:.2}", report.parallel_time().as_ms()),
                format!("{mops:.3}"),
                format!("{:.0}", merged.p50().as_us()),
                format!("{p99_us:.0}"),
                format!("{:.0}", merged.p999().as_us()),
                report.counters.failed_ops.to_string(),
                report.recovery.retransmits.to_string(),
                report.counters.interrupts.to_string(),
            ]);
            let mut row = Json::obj();
            row.set("workload", Json::str(wname));
            row.set("column", Json::str(column.name()));
            row.set("time_ms", Json::num(report.parallel_time().as_ms()));
            row.set(
                "mops_offered",
                Json::num(app.spec(topo).arrival.offered_mops()),
            );
            row.set("mops_sustained", Json::num(mops));
            row.set("p50_us", Json::num(merged.p50().as_us()));
            row.set("p99_us", Json::num(p99_us));
            row.set("p999_us", Json::num(merged.p999().as_us()));
            row.set(
                "p99_bound_us",
                Json::num(p99_bound.map_or(0.0, |b| b.as_us())),
            );
            row.set("interrupts", Json::u64(report.counters.interrupts));
            row.set("failed_ops", Json::u64(report.counters.failed_ops));
            row.set("retransmits", Json::u64(report.recovery.retransmits));
            row.set(
                "mgmt_deliveries",
                Json::u64(report.recovery.mgmt_deliveries),
            );
            row.set("outage_drops", Json::u64(out.faults.outage_drops));
            row.set("stream_hash", Json::str(format!("{hash:016x}")));
            row.set("serve_latency", report.serve.json());
            rows.push(row);
        }
        if base_p99_us < TAIL_RATIO * genima_p99_us {
            eprintln!(
                "FAIL {wname}: Base p99 {base_p99_us:.0}us is not {TAIL_RATIO}x worse than \
                 GeNIMA's {genima_p99_us:.0}us — no visible tail collapse"
            );
            failures += 1;
        }
    }
    println!("{table}");
    if let Some(path) = args.json {
        let mut root = Json::obj();
        root.set("bench", Json::str("serving"));
        root.set("seed", Json::u64(args.seed));
        root.set("nodes", Json::u64(args.nodes as u64));
        root.set("ops", Json::u64(args.ops));
        root.set("horizon_ms", Json::num(HORIZON.as_ms()));
        root.set("rows", Json::Arr(rows));
        match std::fs::write(&path, root.dump()) {
            Ok(()) => println!("wrote {path}"),
            Err(e) => {
                eprintln!("cannot write {path}: {e}");
                std::process::exit(1)
            }
        }
    }
    if failures > 0 {
        eprintln!("serving bench: {failures} failure(s)");
        std::process::exit(1);
    }
    println!("serving bench: all columns completed; tails gated");
}
