//! The cc-NUMA machine model.

use std::collections::{HashMap, VecDeque};

use genima_proto::{BarrierId, Op, OpSource, PageId, Topology};
use genima_sim::{Dur, EventQueue, Time};

/// Cost parameters of the hardware DSM machine.
///
/// Defaults approximate a late-90s SGI Origin 2000: ~128-byte
/// coherence units, sub-microsecond remote misses, hardware
/// fetch-and-op synchronization.
#[derive(Debug, Clone, PartialEq)]
pub struct HwDsmConfig {
    /// Coherence granularity in bytes.
    pub line: u32,
    /// Remote read-miss latency per line.
    pub remote_miss: Dur,
    /// Local / L2 refill per line for data already on the node.
    pub local_miss: Dur,
    /// Uncontended lock acquire/release cost.
    pub lock_op: Dur,
    /// Barrier entry/exit cost (excluding wait).
    pub barrier_op: Dur,
    /// Fraction of a re-read of unmodified data that still misses
    /// (capacity/conflict misses), 0.0–1.0.
    pub rehit_miss_fraction: f64,
}

impl HwDsmConfig {
    /// Origin 2000-like parameters.
    pub fn origin2000() -> HwDsmConfig {
        HwDsmConfig {
            line: 128,
            remote_miss: Dur::from_ns(900),
            local_miss: Dur::from_ns(300),
            lock_op: Dur::from_us(2),
            barrier_op: Dur::from_us(8),
            rehit_miss_fraction: 0.15,
        }
    }
}

impl Default for HwDsmConfig {
    fn default() -> Self {
        HwDsmConfig::origin2000()
    }
}

/// Result of one hardware-DSM run.
#[derive(Debug, Clone)]
pub struct HwReport {
    /// Simulated parallel execution time (after the warmup barrier if
    /// one was given).
    pub finish: Dur,
    /// Remote line misses taken.
    pub remote_misses: u64,
    /// Lock acquisitions.
    pub lock_acquires: u64,
    /// Barrier episodes.
    pub barriers: u64,
}

impl HwReport {
    /// Speedup against a sequential time.
    pub fn speedup(&self, sequential: Dur) -> f64 {
        if self.finish.is_zero() {
            0.0
        } else {
            sequential.as_ns() as f64 / self.finish.as_ns() as f64
        }
    }
}

enum Ev {
    Resume(usize),
}

enum PState {
    Runnable,
    LockWait,
    BarrierWait,
    Done,
}

struct Proc {
    clock: Time,
    src: Box<dyn OpSource>,
    state: PState,
    /// Per page: the global write stamp this processor last observed.
    seen: HashMap<PageId, u64>,
}

struct LockSt {
    held: bool,
    waiters: VecDeque<usize>,
}

/// The hardware DSM machine executing one op stream per processor.
///
/// # Example
///
/// ```
/// use genima_hwdsm::HwDsm;
/// use genima_proto::{ops_source, Op, OpSource, Topology};
/// use genima_sim::Dur;
///
/// let srcs: Vec<Box<dyn OpSource>> = (0..2)
///     .map(|_| Box::new(ops_source(vec![Op::Compute(Dur::from_us(100))])) as Box<dyn OpSource>)
///     .collect();
/// let report = HwDsm::new(Topology::new(2, 1), srcs).run();
/// assert!(report.finish >= Dur::from_us(100));
/// ```
pub struct HwDsm {
    cfg: HwDsmConfig,
    q: EventQueue<Ev>,
    procs: Vec<Proc>,
    locks: Vec<LockSt>,
    barriers: HashMap<BarrierId, (usize, Vec<usize>)>,
    /// Per page: global write stamp.
    stamps: HashMap<PageId, u64>,
    next_stamp: u64,
    warmup: Option<BarrierId>,
    measure_from: Time,
    remote_misses: u64,
    lock_acquires: u64,
    barrier_count: u64,
    done: usize,
}

impl HwDsm {
    /// Creates a machine with default Origin parameters.
    pub fn new(topo: Topology, sources: Vec<Box<dyn OpSource>>) -> HwDsm {
        HwDsm::with_config(HwDsmConfig::origin2000(), topo, sources, 64, None)
    }

    /// Creates a machine with explicit parameters.
    ///
    /// # Panics
    ///
    /// Panics if `sources.len()` does not match the topology.
    pub fn with_config(
        cfg: HwDsmConfig,
        topo: Topology,
        sources: Vec<Box<dyn OpSource>>,
        locks: usize,
        warmup: Option<BarrierId>,
    ) -> HwDsm {
        assert_eq!(sources.len(), topo.procs(), "one source per processor");
        let _ = topo;
        HwDsm {
            cfg,
            q: EventQueue::new(),
            procs: sources
                .into_iter()
                .map(|src| Proc {
                    clock: Time::ZERO,
                    src,
                    state: PState::Runnable,
                    seen: HashMap::new(),
                })
                .collect(),
            locks: (0..locks)
                .map(|_| LockSt {
                    held: false,
                    waiters: VecDeque::new(),
                })
                .collect(),
            barriers: HashMap::new(),
            stamps: HashMap::new(),
            next_stamp: 1,
            warmup,
            measure_from: Time::ZERO,
            remote_misses: 0,
            lock_acquires: 0,
            barrier_count: 0,
            done: 0,
        }
    }

    /// Runs to completion.
    pub fn run(&mut self) -> HwReport {
        for p in 0..self.procs.len() {
            self.q.push(Time::ZERO, Ev::Resume(p));
        }
        while let Some((t, Ev::Resume(p))) = self.q.pop() {
            self.run_proc(t, p);
        }
        assert_eq!(self.done, self.procs.len(), "hardware DSM deadlock");
        let finish = self
            .procs
            .iter()
            .map(|p| p.clock)
            .max()
            .unwrap_or(Time::ZERO);
        HwReport {
            finish: finish.saturating_since(self.measure_from),
            remote_misses: self.remote_misses,
            lock_acquires: self.lock_acquires,
            barriers: self.barrier_count,
        }
    }

    fn run_proc(&mut self, now: Time, p: usize) {
        if matches!(self.procs[p].state, PState::Done) {
            return;
        }
        self.procs[p].state = PState::Runnable;
        if self.procs[p].clock < now {
            self.procs[p].clock = now;
        }
        loop {
            // Resync before interacting ops, like the SVM simulator.
            let clock = self.procs[p].clock;
            if clock > now + Dur::from_us(100) {
                self.q.push(clock, Ev::Resume(p));
                return;
            }
            let Some(op) = self.procs[p].src.next_op() else {
                self.procs[p].state = PState::Done;
                self.done += 1;
                return;
            };
            match op {
                Op::Compute(d) => {
                    self.procs[p].clock += d;
                }
                Op::Read { addr, len } => self.access(p, addr, len, false),
                Op::Write { addr, len } => self.access(p, addr, len, true),
                Op::WriteData { addr, data } => self.access(p, addr, data.len() as u32, true),
                Op::Validate { .. } => {}
                Op::Observe { addr, len } => self.access(p, addr, len, false),
                Op::WaitUntil(until) => {
                    self.procs[p].clock = self.procs[p].clock.max(until);
                }
                Op::ServeEnd { .. } => {}
                Op::Acquire(l) => {
                    if self.procs[p].clock > now {
                        // Resync is cheap for the hardware machine:
                        // approximate by acquiring at the local clock.
                    }
                    self.lock_acquires += 1;
                    let clock = self.procs[p].clock;
                    let lock = &mut self.locks[l.index()];
                    if lock.held {
                        lock.waiters.push_back(p);
                        self.procs[p].state = PState::LockWait;
                        return;
                    }
                    lock.held = true;
                    self.procs[p].clock = clock + self.cfg.lock_op;
                }
                Op::Release(l) => {
                    let end = self.procs[p].clock + self.cfg.lock_op;
                    self.procs[p].clock = end;
                    let lock = &mut self.locks[l.index()];
                    lock.held = false;
                    if let Some(w) = lock.waiters.pop_front() {
                        lock.held = true;
                        let at = end.max(now) + self.cfg.lock_op;
                        self.procs[w].clock = self.procs[w].clock.max(at);
                        self.procs[w].state = PState::Runnable;
                        self.q.push(at, Ev::Resume(w));
                    }
                }
                Op::Barrier(b) => {
                    let nprocs = self.procs.len();
                    let entry = self.barriers.entry(b).or_insert((0, Vec::new()));
                    entry.0 += 1;
                    entry.1.push(p);
                    self.procs[p].state = PState::BarrierWait;
                    let clock = self.procs[p].clock;
                    if entry.0 == nprocs {
                        let (_, waiters) = self.barriers.remove(&b).unwrap();
                        self.barrier_count += 1;
                        let release = clock.max(now) + self.cfg.barrier_op;
                        if self.warmup == Some(b) {
                            self.measure_from = release;
                        }
                        for w in waiters {
                            self.procs[w].clock = release;
                            self.procs[w].state = PState::Runnable;
                            self.q.push(release, Ev::Resume(w));
                        }
                    }
                    return;
                }
            }
        }
    }

    /// Charges the miss cost of touching `[addr, addr+len)`.
    fn access(&mut self, p: usize, addr: genima_proto::Addr, len: u32, write: bool) {
        let lines = len.div_ceil(self.cfg.line).max(1) as u64;
        let mut cost = Dur::ZERO;
        for page in genima_mem_pages(addr, len) {
            let cur = self.stamps.get(&page).copied().unwrap_or(0);
            let seen = self.procs[p].seen.get(&page).copied();
            let page_lines = lines.div_ceil(pages_len(addr, len)).max(1);
            match seen {
                Some(s) if s == cur => {
                    // Warm: only residual capacity misses.
                    let missed = (page_lines as f64 * self.cfg.rehit_miss_fraction).round() as u64;
                    cost += self.cfg.local_miss * missed;
                }
                Some(_) => {
                    // Modified since last access: coherence misses.
                    self.remote_misses += page_lines;
                    cost += self.cfg.remote_miss * page_lines;
                }
                None => {
                    // Cold.
                    self.remote_misses += page_lines;
                    cost += self.cfg.remote_miss * page_lines;
                }
            }
            self.procs[p]
                .seen
                .insert(page, if write { self.next_stamp } else { cur });
            if write {
                self.stamps.insert(page, self.next_stamp);
                self.next_stamp += 1;
            }
        }
        self.procs[p].clock += cost;
    }
}

/// Pages covered by a byte range.
fn genima_mem_pages(addr: genima_proto::Addr, len: u32) -> Vec<PageId> {
    let first = addr.value() / genima_proto::PAGE_SIZE as u64;
    let last = if len == 0 {
        first
    } else {
        (addr.value() + len as u64 - 1) / genima_proto::PAGE_SIZE as u64
    };
    (first..=last).map(|i| PageId::new(i as usize)).collect()
}

fn pages_len(addr: genima_proto::Addr, len: u32) -> u64 {
    genima_mem_pages(addr, len).len() as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use genima_proto::{ops_source, Addr, LockId};

    fn boxed(ops: Vec<Op>) -> Box<dyn OpSource> {
        Box::new(ops_source(ops))
    }

    #[test]
    fn compute_only_run_finishes_at_compute_time() {
        let srcs = vec![boxed(vec![Op::Compute(Dur::from_ms(2))])];
        let r = HwDsm::new(Topology::new(1, 1), srcs).run();
        assert_eq!(r.finish, Dur::from_ms(2));
    }

    #[test]
    fn misses_cost_under_two_microseconds_per_line() {
        // The whole point of Figure 1: hardware misses are orders of
        // magnitude cheaper than SVM page fetches.
        let srcs = vec![boxed(vec![Op::Read {
            addr: Addr::new(0),
            len: 4096,
        }])];
        let r = HwDsm::new(Topology::new(1, 1), srcs).run();
        assert!(r.finish < Dur::from_us(40), "got {}", r.finish);
        assert_eq!(r.remote_misses, 32);
    }

    #[test]
    fn warm_rereads_are_nearly_free() {
        let srcs = vec![boxed(vec![
            Op::Read {
                addr: Addr::new(0),
                len: 4096,
            },
            Op::Read {
                addr: Addr::new(0),
                len: 4096,
            },
        ])];
        let r = HwDsm::new(Topology::new(1, 1), srcs).run();
        assert_eq!(r.remote_misses, 32, "second read hits");
    }

    #[test]
    fn writes_invalidate_other_readers() {
        let b = BarrierId::new(0);
        let srcs = vec![
            boxed(vec![
                Op::Read {
                    addr: Addr::new(0),
                    len: 128,
                },
                Op::Barrier(b),
                Op::Read {
                    addr: Addr::new(0),
                    len: 128,
                },
            ]),
            boxed(vec![
                Op::Write {
                    addr: Addr::new(0),
                    len: 128,
                },
                Op::Barrier(b),
            ]),
        ];
        let r = HwDsm::new(Topology::new(2, 1), srcs).run();
        // p0 cold-misses, p1 cold-misses on write, p0 re-misses after
        // p1's write.
        assert_eq!(r.remote_misses, 3);
    }

    #[test]
    fn contended_lock_serialises() {
        let l = LockId::new(0);
        let mk = || {
            boxed(vec![
                Op::Acquire(l),
                Op::Compute(Dur::from_us(100)),
                Op::Release(l),
            ])
        };
        let r = HwDsm::new(Topology::new(2, 1), vec![mk(), mk()]).run();
        assert!(r.finish >= Dur::from_us(200), "critical sections serialise");
        assert_eq!(r.lock_acquires, 2);
    }

    #[test]
    fn barrier_synchronises_all() {
        let b = BarrierId::new(0);
        let srcs = vec![
            boxed(vec![Op::Compute(Dur::from_us(10)), Op::Barrier(b)]),
            boxed(vec![Op::Compute(Dur::from_ms(1)), Op::Barrier(b)]),
        ];
        let r = HwDsm::new(Topology::new(2, 1), srcs).run();
        assert!(r.finish >= Dur::from_ms(1));
        assert_eq!(r.barriers, 1);
    }
}
