//! Hardware cache-coherent DSM reference model (SGI Origin 2000-like).
//!
//! Figures 1 and 4 and Table 5 of the paper compare the SVM cluster
//! against a hardware-coherent machine running the same applications.
//! This crate provides that reference: a deliberately lightweight
//! model of a directory-based cc-NUMA machine that executes the *same*
//! operation streams as the SVM simulator, but with hardware-DSM
//! costs — cache-line (128 B) coherence granularity, sub-microsecond
//! remote misses, and hardware synchronization primitives. There is no
//! page protection, no twinning or diffing, no protocol processor, and
//! no interrupt cost: exactly the asymmetries the paper's Figure 1
//! illustrates.
//!
//! The model is intentionally simple (the paper uses the Origin only
//! as a reference series): per-page version tracking stands in for the
//! directory — a process re-misses on the lines of a page another
//! process has written since its last access — and locks/barriers are
//! queue-based hardware operations with microsecond-scale costs.

mod machine;

pub use machine::{HwDsm, HwDsmConfig, HwReport};
