//! The collective state machine the NI firmware executes.
//!
//! [`CollState`] is a *pure* executable model: it holds the per-node
//! firmware tables (epoch counters, partial combine accumulators, the
//! frozen contribution each child exposes to its parent) and reacts to
//! the three things that can happen to a collective — a local process
//! set arriving, a child's fan-in message arriving, a release message
//! arriving — by returning the [`Action`]s the firmware must take.
//! The communication layer (`genima-nic`) maps actions onto its
//! send/receive pipeline and charges time; this module charges none,
//! which is what makes it directly testable under proptest with
//! arbitrary delivery orders.
//!
//! Reduce payloads live in these tables, not in packets: exactly as
//! the NI lock chain keeps the lock timestamp in firmware memory and
//! sends fixed-size control messages, a fan-in packet is a signal that
//! the child's frozen contribution (already combined over its whole
//! subtree) is ready for the parent to pull over the tree edge.
//! Exactly-once delivery of those signals is the transport's job
//! (per-channel sequence numbers, retransmit timers, duplicate
//! suppression), so the machine asserts it rather than re-checking.

use std::collections::BTreeMap;

use crate::tree::{children, parent};
use crate::ReduceOp;

/// What the firmware must do after feeding an input to [`CollState`].
///
/// Actions are plain `Copy` signals: the reduce payload stays in the
/// firmware tables (read it with [`CollState::result`] during the
/// exit window), so emitting an action allocates nothing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Action {
    /// Send a fan-in signal: `from`'s subtree is fully combined for
    /// `epoch` and its contribution is frozen for `to` (its parent).
    SendArrive {
        /// The combined child.
        from: u32,
        /// Its tree parent.
        to: u32,
        /// The collective episode.
        epoch: u32,
    },
    /// Send a fan-out signal: the root combine of `epoch` is done and
    /// `to` (a child of `from`) may exit once it propagates further.
    SendRelease {
        /// The releasing parent.
        from: u32,
        /// The released child.
        to: u32,
        /// The collective episode.
        epoch: u32,
    },
    /// `node` exits `epoch` with the fully combined result — surface
    /// it to the host through a completion flag in NI memory. The
    /// combined values sit in the instance's result slot
    /// ([`CollState::result`]), valid for the whole exit window.
    Exit {
        /// The exiting node.
        node: u32,
        /// The collective episode.
        epoch: u32,
    },
}

/// A partial combine at one node: how many of `1 + |children|`
/// expected contributions have been folded in so far.
#[derive(Clone, Debug)]
struct Accum {
    got: u32,
    vals: Vec<u64>,
}

/// Per-node firmware table for one collective.
#[derive(Clone, Debug, Default)]
struct NodeSt {
    /// Next epoch this node's local processes will arrive in.
    epoch: u32,
    /// Epochs this node has fully exited (all prior epochs released).
    released: u32,
    /// Partial combines, keyed by epoch: a subtree child can be one
    /// epoch ahead of this node (it exited `e` while our release of
    /// `e` is still in flight), so two entries may coexist.
    acc: BTreeMap<u32, Accum>,
    /// Frozen subtree contributions awaiting the parent's pull, keyed
    /// by epoch. The release chain guarantees the parent consumes
    /// epoch `e` before this node can freeze `e + 1`.
    outbox: BTreeMap<u32, Vec<u64>>,
}

/// Executable state of one collective instance over `nodes`
/// participants arranged in a k-ary tree (see [`crate::tree`]).
#[derive(Clone, Debug)]
pub struct CollState {
    nodes: u32,
    fanout: u32,
    op: ReduceOp,
    width: usize,
    node: Vec<NodeSt>,
    /// The root's combined result for the most recent completed epoch.
    /// One slot suffices: every node releases epoch `e` before any
    /// node can complete the combine of `e + 1` (completing `e + 1`
    /// needs all arrivals of `e + 1`, which need all exits of `e`).
    result: Option<(u32, Vec<u64>)>,
}

impl CollState {
    /// A fresh collective over `nodes` participants with the given
    /// tree fanout, reduce operator, and element count per
    /// contribution (`width` 0 models a pure barrier).
    ///
    /// # Panics
    ///
    /// Panics if `nodes` or `fanout` is zero.
    pub fn new(nodes: u32, fanout: u32, op: ReduceOp, width: usize) -> CollState {
        assert!(nodes >= 1, "a collective needs at least one node");
        assert!(fanout >= 1, "tree fanout must be at least 1");
        CollState {
            nodes,
            fanout,
            op,
            width,
            node: vec![NodeSt::default(); nodes as usize],
            result: None,
        }
    }

    /// Elements per contribution.
    pub fn width(&self) -> usize {
        self.width
    }

    /// The combined result of the most recently completed epoch.
    pub fn result(&self) -> Option<&(u32, Vec<u64>)> {
        self.result.as_ref()
    }

    /// The epoch `node`'s next local arrival will join.
    pub fn node_epoch(&self, node: u32) -> u32 {
        self.node[node as usize].epoch
    }

    /// All local processes of `node` have arrived with contribution
    /// `vals`: fold it into the node's combine for its next epoch.
    /// Returns the epoch joined and the firmware actions.
    ///
    /// # Panics
    ///
    /// Panics if `vals` has the wrong width or if the node re-arrives
    /// before exiting its previous epoch (a protocol-layer bug).
    pub fn local_arrive(&mut self, node: u32, vals: &[u64]) -> (u32, Vec<Action>) {
        let mut out = Vec::new();
        let epoch = self.local_arrive_into(node, vals, &mut out);
        (epoch, out)
    }

    /// [`CollState::local_arrive`] pushing its actions into a
    /// caller-owned buffer (the firmware service loop reuses one
    /// buffer across packets, so the hot path allocates nothing).
    pub fn local_arrive_into(&mut self, node: u32, vals: &[u64], out: &mut Vec<Action>) -> u32 {
        assert_eq!(vals.len(), self.width, "contribution width mismatch");
        let st = &mut self.node[node as usize];
        assert_eq!(
            st.epoch, st.released,
            "node {node} arrived in epoch {} before exiting {}",
            st.epoch, st.released
        );
        let epoch = st.epoch;
        st.epoch += 1;
        self.contribute(node, epoch, vals, out);
        epoch
    }

    /// A fan-in signal from `child` for `epoch` arrived at `node`:
    /// pull the child's frozen contribution over the tree edge and
    /// fold it in.
    ///
    /// # Panics
    ///
    /// Panics if the child has no frozen contribution for `epoch` —
    /// the transport delivered a signal it never sent, or twice.
    pub fn child_arrive(&mut self, node: u32, child: u32, epoch: u32) -> Vec<Action> {
        let mut out = Vec::new();
        self.child_arrive_into(node, child, epoch, &mut out);
        out
    }

    /// [`CollState::child_arrive`] pushing its actions into a
    /// caller-owned buffer.
    pub fn child_arrive_into(&mut self, node: u32, child: u32, epoch: u32, out: &mut Vec<Action>) {
        debug_assert_eq!(parent(child, self.fanout), Some(node));
        let frozen = self.node[child as usize]
            .outbox
            .remove(&epoch)
            .unwrap_or_else(|| {
                panic!("child {child} signalled epoch {epoch} without a frozen contribution")
            });
        self.contribute(node, epoch, &frozen, out);
    }

    /// A fan-out signal for `epoch` arrived at `node` (or the root
    /// finished its combine): exit the epoch and propagate the release
    /// to the node's children.
    ///
    /// # Panics
    ///
    /// Panics if no combined result for `epoch` exists or the node
    /// already exited it — both indicate a transport exactly-once
    /// failure.
    pub fn release(&mut self, node: u32, epoch: u32) -> Vec<Action> {
        let mut out = Vec::new();
        self.release_into(node, epoch, &mut out);
        out
    }

    /// [`CollState::release`] pushing its actions into a caller-owned
    /// buffer.
    pub fn release_into(&mut self, node: u32, epoch: u32, out: &mut Vec<Action>) {
        match &self.result {
            Some((e, _)) if *e == epoch => {}
            other => panic!(
                "release of epoch {epoch} at node {node} but combined result is {:?}",
                other.as_ref().map(|(e, _)| e)
            ),
        }
        let st = &mut self.node[node as usize];
        assert_eq!(
            st.released, epoch,
            "node {node} released epoch {epoch} twice (already at {})",
            st.released
        );
        st.released = epoch + 1;
        out.push(Action::Exit { node, epoch });
        out.extend(
            children(node, self.fanout, self.nodes).map(|c| Action::SendRelease {
                from: node,
                to: c,
                epoch,
            }),
        );
    }

    /// Root-initiated broadcast: publish `vals` as the result of the
    /// root's next epoch and fan it out down the tree. This is the
    /// release stage running standalone — no fan-in happens, so a
    /// collective instance must be used either for broadcasts or for
    /// barriers/reductions, never interleaved.
    ///
    /// # Panics
    ///
    /// Panics if `vals` has the wrong width or the root has an epoch
    /// in flight.
    pub fn broadcast(&mut self, vals: &[u64]) -> (u32, Vec<Action>) {
        let mut out = Vec::new();
        let epoch = self.broadcast_into(vals, &mut out);
        (epoch, out)
    }

    /// [`CollState::broadcast`] pushing its actions into a
    /// caller-owned buffer.
    pub fn broadcast_into(&mut self, vals: &[u64], out: &mut Vec<Action>) -> u32 {
        assert_eq!(vals.len(), self.width, "broadcast width mismatch");
        let root = &mut self.node[0];
        assert_eq!(
            root.epoch, root.released,
            "broadcast while the root has epoch {} in flight",
            root.epoch
        );
        let epoch = root.epoch;
        // The broadcast consumes an epoch on every node exactly like a
        // completed combine would.
        for st in &mut self.node {
            st.epoch += 1;
        }
        self.result = Some((epoch, vals.to_vec()));
        self.release_into(0, epoch, out);
        epoch
    }

    /// Fold one contribution into `node`'s combine for `epoch`; when
    /// the count reaches `1 + |children|` the subtree is complete and
    /// either freezes (interior node) or publishes + releases (root).
    fn contribute(&mut self, node: u32, epoch: u32, vals: &[u64], out: &mut Vec<Action>) {
        let need = 1 + children(node, self.fanout, self.nodes).count() as u32;
        let op = self.op;
        let width = self.width;
        let st = &mut self.node[node as usize];
        let acc = st.acc.entry(epoch).or_insert_with(|| Accum {
            got: 0,
            vals: vec![op.identity(); width],
        });
        op.combine(&mut acc.vals, vals);
        acc.got += 1;
        if acc.got < need {
            return;
        }
        let done = st
            .acc
            .remove(&epoch)
            .expect("accumulator present: just completed");
        match parent(node, self.fanout) {
            Some(p) => {
                let prior = st.outbox.insert(epoch, done.vals);
                assert!(
                    prior.is_none(),
                    "node {node} froze epoch {epoch} twice — parent never consumed it"
                );
                out.push(Action::SendArrive {
                    from: node,
                    to: p,
                    epoch,
                });
            }
            None => {
                self.result = Some((epoch, done.vals));
                self.release_into(node, epoch, out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Runs one full epoch with in-order delivery; returns per-node
    /// exit values.
    fn run_epoch(cs: &mut CollState, nodes: u32, contribs: &[Vec<u64>]) -> Vec<Vec<u64>> {
        let mut queue: Vec<Action> = Vec::new();
        for n in 0..nodes {
            let (_, acts) = cs.local_arrive(n, &contribs[n as usize]);
            queue.extend(acts);
        }
        let mut exits = vec![Vec::new(); nodes as usize];
        let mut exited = vec![false; nodes as usize];
        while let Some(a) = queue.pop() {
            match a {
                Action::SendArrive { from, to, epoch } => {
                    queue.extend(cs.child_arrive(to, from, epoch));
                }
                Action::SendRelease { to, epoch, .. } => {
                    queue.extend(cs.release(to, epoch));
                }
                Action::Exit { node, epoch } => {
                    assert!(!exited[node as usize], "node {node} exited twice");
                    exited[node as usize] = true;
                    let (e, vals) = cs.result().expect("result published before exit");
                    assert_eq!(*e, epoch, "exit saw a stale result slot");
                    exits[node as usize] = vals.clone();
                }
            }
        }
        assert!(exited.iter().all(|&e| e), "not all nodes exited");
        exits
    }

    #[test]
    fn sum_reduces_across_the_tree() {
        for fanout in [1, 2, 4, 8] {
            let mut cs = CollState::new(9, fanout, ReduceOp::Sum, 2);
            let contribs: Vec<Vec<u64>> = (0..9).map(|n| vec![n, 10 * n]).collect();
            let exits = run_epoch(&mut cs, 9, &contribs);
            for e in exits {
                assert_eq!(e, vec![36, 360]);
            }
        }
    }

    #[test]
    fn max_reduces_like_a_vector_clock_join() {
        let mut cs = CollState::new(5, 2, ReduceOp::Max, 3);
        let contribs: Vec<Vec<u64>> = (0..5u64).map(|n| vec![n, 5 - n, 7]).collect();
        let exits = run_epoch(&mut cs, 5, &contribs);
        for e in exits {
            assert_eq!(e, vec![4, 5, 7]);
        }
    }

    #[test]
    fn width_zero_is_a_pure_barrier() {
        let mut cs = CollState::new(6, 3, ReduceOp::Max, 0);
        let empty: Vec<Vec<u64>> = vec![Vec::new(); 6];
        for epoch in 0..4 {
            let exits = run_epoch(&mut cs, 6, &empty);
            assert_eq!(exits.len(), 6);
            assert_eq!(cs.result().map(|(e, _)| *e), Some(epoch));
        }
    }

    #[test]
    fn single_node_exits_immediately() {
        let mut cs = CollState::new(1, 4, ReduceOp::Sum, 1);
        let (epoch, acts) = cs.local_arrive(0, &[7]);
        assert_eq!(epoch, 0);
        assert_eq!(acts, vec![Action::Exit { node: 0, epoch: 0 }]);
        assert_eq!(cs.result(), Some(&(0, vec![7])));
    }

    #[test]
    fn broadcast_fans_out_without_fan_in() {
        let mut cs = CollState::new(7, 2, ReduceOp::Max, 2);
        let (epoch, acts) = cs.broadcast(&[11, 13]);
        assert_eq!(epoch, 0);
        let mut queue = acts;
        let mut exits = 0;
        while let Some(a) = queue.pop() {
            match a {
                Action::SendRelease { to, epoch, .. } => queue.extend(cs.release(to, epoch)),
                Action::Exit { epoch, .. } => {
                    assert_eq!(cs.result(), Some(&(epoch, vec![11, 13])));
                    exits += 1;
                }
                Action::SendArrive { .. } => panic!("broadcast must not fan in"),
            }
        }
        assert_eq!(exits, 7);
    }

    #[test]
    #[should_panic(expected = "before exiting")]
    fn re_arrival_before_release_is_rejected() {
        let mut cs = CollState::new(2, 2, ReduceOp::Sum, 0);
        let _ = cs.local_arrive(1, &[]);
        let _ = cs.local_arrive(1, &[]);
    }

    #[test]
    #[should_panic(expected = "without a frozen contribution")]
    fn duplicate_fan_in_signal_is_rejected() {
        let mut cs = CollState::new(3, 2, ReduceOp::Sum, 0);
        let (_, acts) = cs.local_arrive(1, &[]);
        assert_eq!(acts.len(), 1);
        let _ = cs.child_arrive(0, 1, 0);
        let _ = cs.child_arrive(0, 1, 0);
    }
}
