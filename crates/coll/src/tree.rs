//! k-ary fan-in/fan-out tree shape.
//!
//! Collectives run over a complete k-ary tree rooted at node 0, the
//! classic NIC-based barrier topology (Yu et al., PAPERS.md): arrivals
//! combine up the tree, the release broadcasts back down. Node `i`'s
//! parent is `(i - 1) / k` and its children are `i*k + 1 ..= i*k + k`,
//! so the shape is fully determined by the fanout — no membership
//! tables live in NI memory.

/// Parent of `node` in a k-ary tree rooted at node 0, or `None` for
/// the root.
///
/// # Panics
///
/// Panics if `fanout` is zero.
pub fn parent(node: u32, fanout: u32) -> Option<u32> {
    assert!(fanout >= 1, "tree fanout must be at least 1");
    if node == 0 {
        None
    } else {
        Some((node - 1) / fanout)
    }
}

/// Children of `node` among `nodes` participants, in index order.
///
/// # Panics
///
/// Panics if `fanout` is zero.
pub fn children(node: u32, fanout: u32, nodes: u32) -> impl Iterator<Item = u32> {
    assert!(fanout >= 1, "tree fanout must be at least 1");
    (1..=fanout as u64)
        .map(move |k| node as u64 * fanout as u64 + k)
        .take_while(move |&c| c < nodes as u64)
        .map(|c| c as u32)
}

/// Depth of `node` below the root (the root is at depth 0): the number
/// of fan-in hops its contribution travels, and therefore the lever
/// that turns the host manager's O(N) serial fan-in into the tree's
/// O(log_k N) critical path.
///
/// # Panics
///
/// Panics if `fanout` is zero.
pub fn depth(node: u32, fanout: u32) -> u32 {
    let mut d = 0;
    let mut n = node;
    while let Some(p) = parent(n, fanout) {
        d += 1;
        n = p;
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn root_has_no_parent() {
        assert_eq!(parent(0, 4), None);
        assert_eq!(parent(1, 4), Some(0));
        assert_eq!(parent(4, 4), Some(0));
        assert_eq!(parent(5, 4), Some(1));
    }

    #[test]
    fn children_invert_parent() {
        for fanout in 1..6 {
            for nodes in 1..40 {
                for n in 0..nodes {
                    for c in children(n, fanout, nodes) {
                        assert_eq!(parent(c, fanout), Some(n));
                    }
                }
            }
        }
    }

    #[test]
    fn every_non_root_is_someones_child() {
        for fanout in 1..6u32 {
            for nodes in 1..40u32 {
                let mut seen = vec![false; nodes as usize];
                seen[0] = true;
                for n in 0..nodes {
                    for c in children(n, fanout, nodes) {
                        assert!(!seen[c as usize], "node {c} has two parents");
                        seen[c as usize] = true;
                    }
                }
                assert!(seen.iter().all(|&s| s), "orphan in {nodes}/{fanout}");
            }
        }
    }

    #[test]
    fn depth_is_logarithmic() {
        // 64 nodes, fanout 4: depth at most 3; fanout 1 degenerates to
        // a 63-deep chain.
        assert!((0..64).map(|n| depth(n, 4)).max() == Some(3));
        assert_eq!(depth(63, 1), 63);
    }
}
