//! NI-firmware collective operations for GeNIMA.
//!
//! The paper removes asynchronous host protocol processing from page
//! fetches, diffs and locks (§2), but barriers in the prototype still
//! funnel through a host-side manager. This crate closes that gap the
//! same way `genima-nic`'s lock chain closed the lock gap: the
//! collective lives entirely in NI firmware state machines — a
//! configurable k-ary fan-in/fan-out tree providing a **barrier**, a
//! **broadcast**, and an **all-reduce** (element-wise u64 sum or max,
//! enough to join vector clocks and write-notice watermarks). No host
//! is interrupted and no host polls; hosts only post their local
//! contribution and later notice a completion flag in NI memory,
//! exactly like noticing a granted lock.
//!
//! The crate is deliberately dependency-free and time-free: it models
//! *what* the firmware tables do ([`CollState`]), while `genima-nic`
//! maps the resulting [`Action`]s onto its send pipeline and charges
//! occupancy and wire time. That split is what lets the exactly-once
//! epoch-exit property be proptested here under arbitrary delivery
//! orders without simulating a network.

mod state;
pub mod tree;

pub use state::{Action, CollState};

/// Identifies one collective instance on the interconnect (the SVM
/// protocol uses one per barrier variable).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CollId(u32);

impl CollId {
    /// Collective `n`.
    pub fn new(n: u32) -> CollId {
        CollId(n)
    }

    /// Index for table lookups.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Element-wise combine operator of an all-reduce.
///
/// Both operators are commutative, associative and idempotent-friendly
/// enough for the tree: any combine order over the same multiset of
/// contributions yields bit-identical results, which is what the
/// fault-recovery tests pin down.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum ReduceOp {
    /// Element-wise wrapping sum.
    Sum,
    /// Element-wise maximum — a vector-clock join when the lanes are
    /// per-writer interval counters.
    #[default]
    Max,
}

impl ReduceOp {
    /// The operator's identity element.
    pub fn identity(self) -> u64 {
        match self {
            ReduceOp::Sum => 0,
            ReduceOp::Max => 0,
        }
    }

    /// Folds `vals` into `acc`, element-wise.
    ///
    /// # Panics
    ///
    /// Panics if the slices differ in length.
    pub fn combine(self, acc: &mut [u64], vals: &[u64]) {
        assert_eq!(acc.len(), vals.len(), "reduce width mismatch");
        for (a, v) in acc.iter_mut().zip(vals) {
            match self {
                ReduceOp::Sum => *a = a.wrapping_add(*v),
                ReduceOp::Max => *a = (*a).max(*v),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use proptest::prelude::*;

    use super::*;

    #[test]
    fn combine_is_elementwise() {
        let mut acc = vec![1, 5, 9];
        ReduceOp::Max.combine(&mut acc, &[3, 2, 9]);
        assert_eq!(acc, vec![3, 5, 9]);
        let mut acc = vec![1, 5, 9];
        ReduceOp::Sum.combine(&mut acc, &[3, 2, 1]);
        assert_eq!(acc, vec![4, 7, 10]);
    }

    /// One in-flight collective message, as the proptest scheduler
    /// sees it.
    #[derive(Clone, Debug)]
    enum Msg {
        Arrive { from: u32, to: u32, epoch: u32 },
        Release { to: u32, epoch: u32 },
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        /// The tentpole property: for arbitrary node counts, fanouts,
        /// per-node arrival orders and network delivery orders, every
        /// node exits every epoch exactly once, and every exit of one
        /// epoch carries the identical, correctly reduced value.
        #[test]
        fn tree_barrier_exits_exactly_once(
            nodes in 1u32..33,
            fanout in 1u32..9,
            epochs in 1u32..4,
            // Infinite supply of scheduling choices: each draw picks
            // which ready input (local arrival or in-flight message)
            // fires next.
            choices in proptest::collection::vec(0usize..usize::MAX, 1..512),
            salts in proptest::collection::vec(0u64..1 << 48, 1..64),
        ) {
            let width = 2usize;
            let mut cs = CollState::new(nodes, fanout, ReduceOp::Max, width);
            // contribution(node, epoch): distinct, salt-scrambled lanes
            // so a wrong combine order or a lost lane changes the bits.
            let contrib = |n: u32, e: u32| -> Vec<u64> {
                (0..width as u64)
                    .map(|l| salts[(n as usize + e as usize + l as usize) % salts.len()]
                        .wrapping_mul(n as u64 + 3)
                        .wrapping_add(e as u64 * 1009 + l))
                    .collect()
            };
            let expected: Vec<Vec<u64>> = (0..epochs)
                .map(|e| {
                    let mut acc = vec![ReduceOp::Max.identity(); width];
                    for n in 0..nodes {
                        ReduceOp::Max.combine(&mut acc, &contrib(n, e));
                    }
                    acc
                })
                .collect();

            // ready-to-arrive nodes + in-flight messages form the
            // schedulable frontier; `choices` drives the interleaving.
            let mut can_arrive: Vec<u32> = (0..nodes).collect();
            let mut inflight: Vec<Msg> = Vec::new();
            let mut exits: Vec<Vec<u32>> = vec![vec![0; nodes as usize]; epochs as usize];
            let mut ci = 0usize;
            let pick = |len: usize, ci: &mut usize| {
                let c = choices[*ci % choices.len()];
                *ci += 1;
                c % len
            };
            loop {
                let frontier = can_arrive.len() + inflight.len();
                if frontier == 0 {
                    break;
                }
                let k = pick(frontier, &mut ci);
                let actions = if k < can_arrive.len() {
                    let n = can_arrive.swap_remove(k);
                    let e = cs.node_epoch(n);
                    let (epoch, acts) = cs.local_arrive(n, &contrib(n, e));
                    prop_assert_eq!(epoch, e);
                    acts
                } else {
                    match inflight.swap_remove(k - can_arrive.len()) {
                        Msg::Arrive { from, to, epoch } => cs.child_arrive(to, from, epoch),
                        Msg::Release { to, epoch } => cs.release(to, epoch),
                    }
                };
                for a in actions {
                    match a {
                        Action::SendArrive { from, to, epoch } =>
                            inflight.push(Msg::Arrive { from, to, epoch }),
                        Action::SendRelease { to, epoch, .. } =>
                            inflight.push(Msg::Release { to, epoch }),
                        Action::Exit { node, epoch } => {
                            exits[epoch as usize][node as usize] += 1;
                            // The single result slot must hold this
                            // epoch's value for the whole exit window.
                            let (re, rv) = cs.result().expect("result before exit");
                            prop_assert_eq!(*re, epoch, "stale result slot");
                            prop_assert_eq!(
                                rv,
                                &expected[epoch as usize],
                                "node {} epoch {}", node, epoch
                            );
                            if epoch + 1 < epochs {
                                can_arrive.push(node);
                            }
                        }
                    }
                }
            }
            for (e, per_node) in exits.iter().enumerate() {
                for (n, &c) in per_node.iter().enumerate() {
                    prop_assert_eq!(c, 1, "node {} exited epoch {} {} times", n, e, c);
                }
            }
        }
    }
}
