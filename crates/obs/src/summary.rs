//! Text summaries of captured artifacts: top-N aggregations of a
//! timeline and the NI-monitor stage tables of a JSON `RunReport`.
//!
//! Both `xtask obs-summary` and `examples/ni_monitor.rs` render through
//! these helpers, so the stage tables have exactly one implementation.

use crate::json::Json;
use std::collections::BTreeMap;

/// A minimal aligned-column text table (the observability layer cannot
/// use the core crate's renderer without a dependency cycle).
#[derive(Clone, Debug)]
pub struct Grid {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Grid {
    /// Creates a table with the given column headers.
    pub fn new(headers: Vec<&str>) -> Grid {
        Grid {
            headers: headers.into_iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (shorter rows are padded with blanks).
    pub fn row(&mut self, cells: Vec<String>) {
        self.rows.push(cells);
    }

    /// Renders with each column padded to its widest cell.
    pub fn render(&self) -> String {
        let cols = self
            .headers
            .len()
            .max(self.rows.iter().map(|r| r.len()).max().unwrap_or(0));
        let mut widths = vec![0usize; cols];
        let measure = |widths: &mut Vec<usize>, cells: &[String]| {
            for (i, c) in cells.iter().enumerate() {
                widths[i] = widths[i].max(c.chars().count());
            }
        };
        measure(&mut widths, &self.headers);
        for r in &self.rows {
            measure(&mut widths, r);
        }
        let mut out = String::new();
        let emit = |out: &mut String, cells: &[String], widths: &[usize]| {
            for (i, w) in widths.iter().enumerate() {
                let cell = cells.get(i).map(|c| c.as_str()).unwrap_or("");
                out.push_str(cell);
                let pad = w.saturating_sub(cell.chars().count());
                if i + 1 < widths.len() {
                    for _ in 0..pad + 2 {
                        out.push(' ');
                    }
                }
            }
            out.push('\n');
        };
        emit(&mut out, &self.headers, &widths);
        let rule: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        emit(&mut out, &rule, &widths);
        for r in &self.rows {
            emit(&mut out, r, &widths);
        }
        out
    }
}

#[derive(Clone, Copy, Debug, Default)]
struct Agg {
    count: u64,
    total_us: f64,
    max_us: f64,
}

impl Agg {
    fn add(&mut self, dur_us: f64) {
        self.count += 1;
        self.total_us += dur_us;
        if dur_us > self.max_us {
            self.max_us = dur_us;
        }
    }
}

/// Top-N aggregation of a parsed `trace_event` array: per-kind and
/// per-node tables of event counts and busy time. Flow and metadata
/// events are excluded (they duplicate the records they annotate).
pub fn trace_top(trace: &Json, top: usize) -> Result<String, String> {
    let events = trace
        .as_arr()
        .ok_or_else(|| "trace is not a JSON array".to_string())?;
    let mut by_kind: BTreeMap<String, Agg> = BTreeMap::new();
    let mut by_node: BTreeMap<u64, Agg> = BTreeMap::new();
    for ev in events {
        let ph = ev.get("ph").and_then(|p| p.as_str()).unwrap_or("");
        if ph != "X" && ph != "i" {
            continue;
        }
        let name = ev
            .get("name")
            .and_then(|n| n.as_str())
            .unwrap_or("<unnamed>")
            .to_string();
        let pid = ev.get("pid").and_then(|p| p.as_u64()).unwrap_or(0);
        let dur = ev.get("dur").and_then(|d| d.as_f64()).unwrap_or(0.0);
        by_kind.entry(name).or_default().add(dur);
        by_node.entry(pid).or_default().add(dur);
    }
    let mut kinds: Vec<(String, Agg)> = by_kind.into_iter().collect();
    kinds.sort_by(|a, b| {
        b.1.total_us
            .partial_cmp(&a.1.total_us)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| b.1.count.cmp(&a.1.count))
    });
    let mut out = String::new();
    let mut kind_grid = Grid::new(vec!["span kind", "count", "total ms", "max us"]);
    for (name, agg) in kinds.iter().take(top) {
        kind_grid.row(vec![
            name.clone(),
            agg.count.to_string(),
            format!("{:.3}", agg.total_us / 1000.0),
            format!("{:.1}", agg.max_us),
        ]);
    }
    out.push_str(&format!("top {} span kinds by busy time\n", top));
    out.push_str(&kind_grid.render());
    let mut nodes: Vec<(u64, Agg)> = by_node.into_iter().collect();
    nodes.sort_by(|a, b| {
        b.1.total_us
            .partial_cmp(&a.1.total_us)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut node_grid = Grid::new(vec!["node", "events", "total ms"]);
    for (node, agg) in nodes.iter().take(top) {
        node_grid.row(vec![
            node.to_string(),
            agg.count.to_string(),
            format!("{:.3}", agg.total_us / 1000.0),
        ]);
    }
    out.push_str(&format!("\ntop {} nodes by recorded busy time\n", top));
    out.push_str(&node_grid.render());
    Ok(out)
}

fn stage_rows<'a>(report: &'a Json, class: &str) -> Result<Vec<&'a Json>, String> {
    let stages = report
        .get("monitor")
        .and_then(|m| m.get("stages"))
        .and_then(|s| s.as_arr())
        .ok_or_else(|| "report has no monitor.stages array".to_string())?;
    Ok(stages
        .iter()
        .filter(|s| s.get("class").and_then(|c| c.as_str()) == Some(class))
        .collect())
}

/// Renders the paper's Tables 3/4 view — per-stage contention ratios
/// and residency tails, small and large messages — for one or more
/// labelled JSON `RunReport`s side by side.
pub fn monitor_tables(reports: &[(&str, &Json)]) -> Result<String, String> {
    let mut out = String::new();
    for (class, label) in [
        ("small", "small messages (<=256B)"),
        ("large", "large messages"),
    ] {
        let mut headers = vec!["Stage".to_string()];
        for (name, _) in reports {
            headers.push(name.to_string());
        }
        let mut ratio_grid = Grid::new(headers.iter().map(|h| h.as_str()).collect());
        let mut tail_headers = vec!["Stage".to_string()];
        for (name, _) in reports {
            tail_headers.push(format!("{name} p50/p95/p99"));
        }
        let mut tail_grid = Grid::new(tail_headers.iter().map(|h| h.as_str()).collect());
        let per_report: Vec<Vec<&Json>> = reports
            .iter()
            .map(|(_, report)| stage_rows(report, class))
            .collect::<Result<_, _>>()?;
        let stage_count = per_report.iter().map(|r| r.len()).max().unwrap_or(0);
        for i in 0..stage_count {
            let stage_name = per_report
                .iter()
                .find_map(|rows| rows.get(i))
                .and_then(|s| s.get("stage"))
                .and_then(|s| s.as_str())
                .unwrap_or("?")
                .to_string();
            let mut ratio_cells = vec![stage_name.clone()];
            let mut tail_cells = vec![stage_name];
            for rows in &per_report {
                if let Some(s) = rows.get(i) {
                    let n = s.get("n").and_then(|v| v.as_u64()).unwrap_or(0);
                    if n == 0 {
                        ratio_cells.push("-".to_string());
                        tail_cells.push("-".to_string());
                    } else {
                        let ratio = s.get("ratio").and_then(|v| v.as_f64()).unwrap_or(1.0);
                        ratio_cells.push(format!("{ratio:.2}  (n={n})"));
                        let p50 = s.get("p50_us").and_then(|v| v.as_f64()).unwrap_or(0.0);
                        let p95 = s.get("p95_us").and_then(|v| v.as_f64()).unwrap_or(0.0);
                        let p99 = s.get("p99_us").and_then(|v| v.as_f64()).unwrap_or(0.0);
                        tail_cells.push(format!("{p50:.1} / {p95:.1} / {p99:.1} us"));
                    }
                } else {
                    ratio_cells.push("-".to_string());
                    tail_cells.push("-".to_string());
                }
            }
            ratio_grid.row(ratio_cells);
            tail_grid.row(tail_cells);
        }
        out.push_str(&format!("-- {label}\n{}\n", ratio_grid.render()));
        out.push_str(&format!(
            "-- {label}, residency tails\n{}\n",
            tail_grid.render()
        ));
    }
    let mut traffic = Grid::new(vec!["run", "small pkts", "large pkts", "total bytes"]);
    for (name, report) in reports {
        let packets = report.get("monitor").and_then(|m| m.get("packets"));
        let small = packets
            .and_then(|p| p.get("small"))
            .and_then(|v| v.as_u64())
            .unwrap_or(0);
        let large = packets
            .and_then(|p| p.get("large"))
            .and_then(|v| v.as_u64())
            .unwrap_or(0);
        let bytes = report
            .get("monitor")
            .and_then(|m| m.get("total_bytes"))
            .and_then(|v| v.as_u64())
            .unwrap_or(0);
        traffic.row(vec![
            name.to_string(),
            small.to_string(),
            large.to_string(),
            bytes.to_string(),
        ]);
    }
    out.push_str(&format!("-- traffic\n{}", traffic.render()));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stage(stage: &str, class: &str, n: u64, ratio: f64) -> Json {
        let mut s = Json::obj();
        s.set("stage", Json::str(stage))
            .set("class", Json::str(class))
            .set("n", Json::u64(n))
            .set("ratio", Json::num(ratio))
            .set("p50_us", Json::num(10.0))
            .set("p95_us", Json::num(20.0))
            .set("p99_us", Json::num(30.0));
        s
    }

    fn sample_report() -> Json {
        let mut packets = Json::obj();
        packets
            .set("small", Json::u64(10))
            .set("large", Json::u64(2));
        let mut monitor = Json::obj();
        monitor
            .set("packets", packets)
            .set("total_bytes", Json::u64(9000))
            .set(
                "stages",
                Json::Arr(vec![
                    stage("SourceLat", "small", 10, 1.5),
                    stage("DestLat", "small", 10, 2.0),
                    stage("SourceLat", "large", 0, 1.0),
                    stage("DestLat", "large", 2, 1.1),
                ]),
            );
        let mut report = Json::obj();
        report.set("monitor", monitor);
        report
    }

    #[test]
    fn monitor_tables_render_both_classes() {
        let report = sample_report();
        let text =
            monitor_tables(&[("Base", &report), ("GeNIMA", &report)]).expect("tables render");
        assert!(text.contains("small messages"));
        assert!(text.contains("large messages"));
        assert!(text.contains("SourceLat"));
        assert!(text.contains("1.50  (n=10)"));
        assert!(text.contains("10.0 / 20.0 / 30.0 us"));
        // The empty large-class SourceLat cell renders as "-".
        assert!(text.contains('-'));
        assert!(text.contains("total bytes"));
    }

    #[test]
    fn monitor_tables_reject_reports_without_monitor() {
        let empty = Json::obj();
        assert!(monitor_tables(&[("x", &empty)]).is_err());
    }

    #[test]
    fn trace_top_aggregates_by_kind_and_node() {
        let text = r#"[
            {"name":"page_fetch","ph":"X","ts":0,"dur":100,"pid":0,"tid":0},
            {"name":"page_fetch","ph":"X","ts":50,"dur":300,"pid":1,"tid":0},
            {"name":"retransmit","ph":"i","ts":70,"pid":1,"tid":1},
            {"name":"flow","ph":"s","ts":70,"pid":1,"tid":1,"id":9},
            {"name":"process_name","ph":"M","ts":0,"pid":0}
        ]"#;
        let parsed = Json::parse(text).expect("parse");
        let out = trace_top(&parsed, 10).expect("summary");
        assert!(out.contains("page_fetch"));
        assert!(out.contains("retransmit"));
        // Flow and metadata events are excluded from counts.
        assert!(!out.contains("process_name"));
        assert!(out.contains("0.400"), "total ms of page_fetch: {out}");
    }

    #[test]
    fn grid_pads_columns() {
        let mut g = Grid::new(vec!["a", "long-header"]);
        g.row(vec!["wide-cell".to_string(), "x".to_string()]);
        let text = g.render();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("a "));
        assert!(lines[2].starts_with("wide-cell"));
    }
}
