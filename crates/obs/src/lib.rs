//! `genima-obs`: the observability layer for the GeNIMA simulator.
//!
//! The paper's evaluation is an exercise in *attribution* — Figure 3
//! splits execution time into protocol categories, Tables 3/4 split
//! packet latency into NI pipeline stages. This crate unifies the
//! instrumentation those reproductions need:
//!
//! * a typed span registry ([`SpanKind`], [`SpanRecord`]) recorded into
//!   bounded per-node ring buffers ([`Recorder`]) — zero-cost when
//!   disabled, because no recorder exists at all;
//! * a Chrome `trace_event`/Perfetto timeline exporter
//!   ([`timeline_json`]) with one track per node host and one per NI
//!   firmware, and flow arrows for cross-node handoffs;
//! * a dependency-free JSON value ([`Json`]) used for `RunReport`
//!   serialization, `BENCH_*.json` trajectories and schema checks;
//! * text summaries ([`trace_top`], [`monitor_tables`]) shared by
//!   `xtask obs-summary` and the examples.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod json;
pub mod ring;
pub mod span;
pub mod summary;
pub mod timeline;

pub use json::{Json, JsonError};
pub use ring::{ObsConfig, ObsHandle, ObsReport, Recorder};
pub use span::{
    flow_coll_id, flow_diff_id, flow_lock_id, op_barrier_id, op_class, op_diff_id, op_fetch_id,
    op_lock_id, Flow, FlowDir, OpClass, SpanKind, SpanRecord, Track,
};
pub use summary::{monitor_tables, trace_top, Grid};
pub use timeline::{count_named, timeline_json, validate_trace, TraceStats};
