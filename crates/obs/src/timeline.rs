//! Chrome `trace_event` / Perfetto timeline export.
//!
//! A run becomes a JSON array of trace events: one process per node,
//! two threads per process (host and NI firmware). Spans are `ph:"X"`
//! complete events, instants are `ph:"i"`, and correlated pairs
//! (direct-diff deposit → apply, NI lock grant sent → received) add
//! `ph:"s"`/`ph:"f"` flow events so the cross-node handoffs render as
//! arrows. Open the file at <https://ui.perfetto.dev> or
//! `chrome://tracing`.

use crate::json::Json;
use crate::span::{FlowDir, SpanRecord};

fn base_event(rec: &SpanRecord, ph: &str) -> Json {
    let mut ev = Json::obj();
    ev.set("name", Json::str(rec.kind.name()))
        .set("cat", Json::str(rec.kind.category()))
        .set("ph", Json::str(ph))
        .set("ts", Json::num(rec.start.as_us()))
        .set("pid", Json::u64(rec.node as u64))
        .set("tid", Json::u64(rec.track.tid()));
    ev
}

fn meta_event(node: usize, name: &str, tid: Option<u64>, value: &str) -> Json {
    let mut args = Json::obj();
    args.set("name", Json::str(value));
    let mut ev = Json::obj();
    ev.set("name", Json::str(name))
        .set("ph", Json::str("M"))
        .set("ts", Json::num(0.0))
        .set("pid", Json::u64(node as u64));
    if let Some(t) = tid {
        ev.set("tid", Json::u64(t));
    }
    ev.set("args", args);
    ev
}

/// Renders records as a `trace_event` JSON array (the "JSON array
/// format": a plain array of event objects, which both Perfetto and
/// `chrome://tracing` accept).
pub fn timeline_json(spans: &[SpanRecord]) -> String {
    let mut events = Vec::new();
    let nodes = spans.iter().map(|s| s.node + 1).max().unwrap_or(0);
    for node in 0..nodes {
        events.push(meta_event(
            node,
            "process_name",
            None,
            &format!("node {node}"),
        ));
        events.push(meta_event(node, "thread_name", Some(0), "host"));
        events.push(meta_event(node, "thread_name", Some(1), "ni-firmware"));
    }
    for rec in spans {
        if rec.kind.is_instant() {
            let mut ev = base_event(rec, "i");
            ev.set("s", Json::str("t"));
            let mut args = Json::obj();
            args.set("arg", Json::u64(rec.arg));
            if rec.op != 0 {
                args.set("op", Json::u64(rec.op));
            }
            ev.set("args", args);
            events.push(ev);
        } else {
            let mut ev = base_event(rec, "X");
            ev.set("dur", Json::num(rec.dur.as_us()));
            let mut args = Json::obj();
            args.set("arg", Json::u64(rec.arg));
            if rec.op != 0 {
                args.set("op", Json::u64(rec.op));
            }
            ev.set("args", args);
            events.push(ev);
        }
        if let Some(flow) = rec.flow {
            let ph = match flow.dir {
                FlowDir::Start => "s",
                FlowDir::Finish => "f",
            };
            // Flow names must match at both endpoints for the arrow to
            // bind, so both sides emit the shared name "flow".
            let mut ev = Json::obj();
            ev.set("name", Json::str("flow"))
                .set("cat", Json::str(rec.kind.category()))
                .set("ph", Json::str(ph))
                .set("ts", Json::num(rec.start.as_us()))
                .set("pid", Json::u64(rec.node as u64))
                .set("tid", Json::u64(rec.track.tid()))
                .set("id", Json::u64(flow.id));
            if flow.dir == FlowDir::Finish {
                ev.set("bp", Json::str("e"));
            }
            events.push(ev);
        }
    }
    Json::Arr(events).dump()
}

/// Summary statistics of a parsed trace, returned by
/// [`validate_trace`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TraceStats {
    /// Total events, including metadata.
    pub events: usize,
    /// `ph:"X"` complete events.
    pub complete: usize,
    /// `ph:"i"` instant events.
    pub instants: usize,
    /// `ph:"s"`/`ph:"f"` flow events.
    pub flows: usize,
    /// `ph:"M"` metadata events.
    pub metadata: usize,
}

/// Checks that `text` is a structurally valid `trace_event` JSON
/// array: every element an object carrying `name`/`ph`/`ts`/`pid`
/// (plus `dur` on complete events). Returns per-phase counts.
pub fn validate_trace(text: &str) -> Result<TraceStats, String> {
    let parsed = Json::parse(text).map_err(|e| e.to_string())?;
    let events = parsed
        .as_arr()
        .ok_or_else(|| "trace is not a JSON array".to_string())?;
    let mut stats = TraceStats::default();
    for (i, ev) in events.iter().enumerate() {
        if ev.as_obj().is_none() {
            return Err(format!("event {i} is not an object"));
        }
        for key in ["name", "ph", "ts", "pid"] {
            if ev.get(key).is_none() {
                return Err(format!("event {i} is missing {key:?}"));
            }
        }
        let ph = ev
            .get("ph")
            .and_then(|p| p.as_str())
            .ok_or_else(|| format!("event {i} has a non-string ph"))?;
        stats.events += 1;
        match ph {
            "X" => {
                if ev.get("dur").and_then(|d| d.as_f64()).is_none() {
                    return Err(format!("complete event {i} is missing dur"));
                }
                stats.complete += 1;
            }
            "i" => stats.instants += 1,
            "s" | "f" => {
                if ev.get("id").is_none() {
                    return Err(format!("flow event {i} is missing id"));
                }
                stats.flows += 1;
            }
            "M" => stats.metadata += 1,
            other => return Err(format!("event {i} has unknown phase {other:?}")),
        }
    }
    Ok(stats)
}

/// Number of events named `name` in a parsed-and-validated trace.
/// Returns 0 on malformed input (validate first for diagnostics).
pub fn count_named(text: &str, name: &str) -> usize {
    match Json::parse(text) {
        Ok(parsed) => parsed
            .as_arr()
            .map(|events| {
                events
                    .iter()
                    .filter(|ev| ev.get("name").and_then(|n| n.as_str()) == Some(name))
                    .count()
            })
            .unwrap_or(0),
        Err(e) => {
            let _parse_failure = e;
            0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ring::Recorder;
    use crate::span::{flow_lock_id, Flow, SpanKind, Track};
    use genima_sim::Time;

    fn sample_spans() -> Vec<SpanRecord> {
        let mut r = Recorder::new(2, 64);
        r.span(
            SpanKind::PageFetch,
            0,
            Track::Host,
            Time::from_ns(1000),
            Time::from_ns(21000),
            7,
        );
        r.instant(SpanKind::FetchRetry, 0, Track::Host, Time::from_ns(5000), 7);
        r.span(
            SpanKind::NiLockService,
            1,
            Track::Firmware,
            Time::from_ns(2000),
            Time::from_ns(4000),
            3,
        );
        let id = flow_lock_id(3, 41);
        r.instant_flow(
            SpanKind::NiLockGrant,
            1,
            Track::Firmware,
            Time::from_ns(4000),
            3,
            Flow {
                id,
                dir: FlowDir::Start,
            },
        );
        r.instant_flow(
            SpanKind::NiLockGrant,
            0,
            Track::Firmware,
            Time::from_ns(9000),
            3,
            Flow {
                id,
                dir: FlowDir::Finish,
            },
        );
        r.take().spans
    }

    #[test]
    fn timeline_is_valid_trace_event_array() {
        let text = timeline_json(&sample_spans());
        let stats = validate_trace(&text).expect("valid trace");
        // 2 nodes × 3 metadata, 2 complete, 3 instants, 2 flows.
        assert_eq!(stats.metadata, 6);
        assert_eq!(stats.complete, 2);
        assert_eq!(stats.instants, 3);
        assert_eq!(stats.flows, 2);
        assert_eq!(stats.events, 13);
    }

    #[test]
    fn flow_endpoints_share_id_and_name() {
        let text = timeline_json(&sample_spans());
        let parsed = Json::parse(&text).expect("parse");
        let flows: Vec<&Json> = parsed
            .as_arr()
            .expect("array")
            .iter()
            .filter(|ev| {
                let ph = ev.get("ph").and_then(|p| p.as_str());
                ph == Some("s") || ph == Some("f")
            })
            .collect();
        assert_eq!(flows.len(), 2);
        assert_eq!(
            flows[0].get("id").and_then(|v| v.as_u64()),
            flows[1].get("id").and_then(|v| v.as_u64())
        );
        assert_eq!(flows[0].get("name").and_then(|v| v.as_str()), Some("flow"));
    }

    #[test]
    fn count_named_finds_kinds() {
        let text = timeline_json(&sample_spans());
        assert_eq!(count_named(&text, "page_fetch"), 1);
        assert_eq!(count_named(&text, "interrupt"), 0);
    }

    #[test]
    fn validate_rejects_malformed() {
        assert!(validate_trace("{}").is_err());
        assert!(validate_trace("[{\"name\":\"x\"}]").is_err());
        assert!(
            validate_trace("[{\"name\":\"x\",\"ph\":\"X\",\"ts\":0,\"pid\":0}]").is_err(),
            "complete event without dur must fail"
        );
        assert!(validate_trace("[]").expect("empty array is fine").events == 0);
    }

    #[test]
    fn ts_and_dur_are_microseconds() {
        let text = timeline_json(&sample_spans());
        let parsed = Json::parse(&text).expect("parse");
        let fetch = parsed
            .as_arr()
            .expect("array")
            .iter()
            .find(|ev| ev.get("name").and_then(|n| n.as_str()) == Some("page_fetch"))
            .expect("page_fetch present");
        assert_eq!(fetch.get("ts").and_then(|v| v.as_f64()), Some(1.0));
        assert_eq!(fetch.get("dur").and_then(|v| v.as_f64()), Some(20.0));
    }
}
