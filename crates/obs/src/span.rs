//! The span taxonomy: typed, per-node records of the protocol's hot
//! operations.
//!
//! A [`SpanRecord`] is either a *span* (non-zero duration: a page
//! fetch, a lock wait, a firmware service occupancy) or an *instant*
//! (zero duration: a retry, a deposited diff, an injected fault).
//! Records carry the node they happened on and the [`Track`] within
//! that node — the host processors or the NI firmware — which becomes
//! the thread lane in the exported timeline.

use genima_sim::{Dur, Time};

/// Which lane of a node a record belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Track {
    /// Host processors (protocol handlers, application stalls).
    Host,
    /// NI firmware (LANai service loop, DMA engines).
    Firmware,
}

impl Track {
    /// Stable thread id used in the timeline export.
    pub fn tid(self) -> u64 {
        match self {
            Track::Host => 0,
            Track::Firmware => 1,
        }
    }

    /// Human label for the timeline thread-name metadata.
    pub fn label(self) -> &'static str {
        match self {
            Track::Host => "host",
            Track::Firmware => "ni-firmware",
        }
    }
}

/// The kind of operation a record describes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SpanKind {
    /// Host span: page-fault start to copy installed (`arg` = page).
    PageFetch,
    /// Host instant: a stale-timestamp fetch was re-issued (`arg` = page).
    FetchRetry,
    /// Host span: twin comparison / diff run computation (`arg` = page).
    DiffCompute,
    /// Host instant at the writer: a diff deposited directly into home
    /// memory (`arg` = page). Flow start toward [`SpanKind::DiffApply`].
    DirectDiffDeposit,
    /// Host instant at the home: a remote diff became visible
    /// (`arg` = page). Flow end from [`SpanKind::DirectDiffDeposit`].
    DiffApply,
    /// Host span: lock acquire request to grant (`arg` = lock).
    LockAcquire,
    /// Host instant: lock released (`arg` = lock).
    LockRelease,
    /// Host span: barrier arrival to release (`arg` = barrier).
    BarrierWait,
    /// Host span: asynchronous protocol interrupt occupancy on the
    /// handling processor (`arg` = service ns). Absent under GeNIMA.
    Interrupt,
    /// Firmware span: NI-lock message serviced by the LANai
    /// (`arg` = lock).
    NiLockService,
    /// Firmware instant: a lock grant left (flow start) or reached
    /// (flow end) an NI (`arg` = lock).
    NiLockGrant,
    /// Firmware span: remote page fetch served entirely by the NI
    /// (`arg` = requesting node).
    FetchService,
    /// Firmware instant: a send timed out and was retransmitted
    /// (`arg` = destination node).
    Retransmit,
    /// Firmware instant: fault injection dropped a packet
    /// (`arg` = destination node).
    FaultDrop,
    /// Firmware instant: fault injection duplicated a packet
    /// (`arg` = destination node).
    FaultDup,
    /// Firmware instant: fault injection delayed a packet
    /// (`arg` = destination node).
    FaultDelay,
    /// Firmware instant: a collective fan-in signal left a child NI
    /// (flow start) or reached its tree parent (flow end);
    /// `arg` = collective.
    CollFanIn,
    /// Firmware span: the LANai folded a contribution into its combine
    /// table — a local arrival, a child's frozen subtree, or a release
    /// being applied (`arg` = collective).
    CollCombine,
    /// Firmware instant: a collective release left a parent NI (flow
    /// start) or reached a child (flow end); `arg` = collective.
    CollFanOut,
    /// Host instant: a doorbell write made a batch of queued work
    /// requests visible to the RNIC (`arg` = destination node). Only
    /// emitted by hardware models with doorbell batching.
    QpDoorbell,
    /// Firmware instant: a completion-queue entry raised a solicited
    /// event for the host (`arg` = source node). The RDMA analogue of
    /// a deposit's completion flag.
    CqNotify,
    /// Firmware instant: an on-demand-paging fault — a remote fetch
    /// touched an unregistered page and the RNIC had to fault it in
    /// before the DMA (`arg` = translation key).
    OdpFault,
    /// Firmware span at the *receiver*: a packet's time on the wire,
    /// from the source NI finishing injection to delivery at the
    /// destination NI (`arg` = source node). Only emitted for records
    /// attributed to an operation (`op != 0`); the critical-path
    /// analyzer uses it to bridge tracks across nodes.
    WireTransit,
}

impl SpanKind {
    /// Every kind, in display order.
    pub const ALL: [SpanKind; 23] = [
        SpanKind::PageFetch,
        SpanKind::FetchRetry,
        SpanKind::DiffCompute,
        SpanKind::DirectDiffDeposit,
        SpanKind::DiffApply,
        SpanKind::LockAcquire,
        SpanKind::LockRelease,
        SpanKind::BarrierWait,
        SpanKind::Interrupt,
        SpanKind::NiLockService,
        SpanKind::NiLockGrant,
        SpanKind::FetchService,
        SpanKind::Retransmit,
        SpanKind::FaultDrop,
        SpanKind::FaultDup,
        SpanKind::FaultDelay,
        SpanKind::CollFanIn,
        SpanKind::CollCombine,
        SpanKind::CollFanOut,
        SpanKind::QpDoorbell,
        SpanKind::CqNotify,
        SpanKind::OdpFault,
        SpanKind::WireTransit,
    ];

    /// Stable name used in timelines and summaries.
    pub fn name(self) -> &'static str {
        match self {
            SpanKind::PageFetch => "page_fetch",
            SpanKind::FetchRetry => "fetch_retry",
            SpanKind::DiffCompute => "diff_compute",
            SpanKind::DirectDiffDeposit => "direct_diff_deposit",
            SpanKind::DiffApply => "diff_apply",
            SpanKind::LockAcquire => "lock_acquire",
            SpanKind::LockRelease => "lock_release",
            SpanKind::BarrierWait => "barrier_wait",
            SpanKind::Interrupt => "interrupt",
            SpanKind::NiLockService => "ni_lock_service",
            SpanKind::NiLockGrant => "ni_lock_grant",
            SpanKind::FetchService => "fetch_service",
            SpanKind::Retransmit => "retransmit",
            SpanKind::FaultDrop => "fault_drop",
            SpanKind::FaultDup => "fault_dup",
            SpanKind::FaultDelay => "fault_delay",
            SpanKind::CollFanIn => "coll_fan_in",
            SpanKind::CollCombine => "coll_combine",
            SpanKind::CollFanOut => "coll_fan_out",
            SpanKind::QpDoorbell => "qp_doorbell",
            SpanKind::CqNotify => "cq_notify",
            SpanKind::OdpFault => "odp_fault",
            SpanKind::WireTransit => "wire_transit",
        }
    }

    /// Coarse grouping used as the trace_event category.
    pub fn category(self) -> &'static str {
        match self {
            SpanKind::PageFetch
            | SpanKind::FetchRetry
            | SpanKind::DiffCompute
            | SpanKind::DirectDiffDeposit
            | SpanKind::DiffApply
            | SpanKind::LockAcquire
            | SpanKind::LockRelease
            | SpanKind::BarrierWait
            | SpanKind::Interrupt => "proto",
            SpanKind::NiLockService
            | SpanKind::NiLockGrant
            | SpanKind::FetchService
            | SpanKind::Retransmit
            | SpanKind::CollFanIn
            | SpanKind::CollCombine
            | SpanKind::CollFanOut
            | SpanKind::QpDoorbell
            | SpanKind::CqNotify
            | SpanKind::OdpFault
            | SpanKind::WireTransit => "nic",
            SpanKind::FaultDrop | SpanKind::FaultDup | SpanKind::FaultDelay => "fault",
        }
    }

    /// Kinds recorded as zero-duration instants.
    pub fn is_instant(self) -> bool {
        match self {
            SpanKind::FetchRetry
            | SpanKind::DirectDiffDeposit
            | SpanKind::DiffApply
            | SpanKind::LockRelease
            | SpanKind::NiLockGrant
            | SpanKind::Retransmit
            | SpanKind::FaultDrop
            | SpanKind::FaultDup
            | SpanKind::FaultDelay
            | SpanKind::CollFanIn
            | SpanKind::CollFanOut
            | SpanKind::QpDoorbell
            | SpanKind::CqNotify
            | SpanKind::OdpFault => true,
            SpanKind::PageFetch
            | SpanKind::DiffCompute
            | SpanKind::LockAcquire
            | SpanKind::BarrierWait
            | SpanKind::Interrupt
            | SpanKind::NiLockService
            | SpanKind::FetchService
            | SpanKind::CollCombine
            | SpanKind::WireTransit => false,
        }
    }
}

/// Direction of a flow arrow attached to a record.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FlowDir {
    /// The record is the source of the arrow.
    Start,
    /// The record is the destination of the arrow.
    Finish,
}

/// A correlated flow endpoint: records sharing an `id` are connected
/// by an arrow in the exported timeline (deposit → apply, grant sent
/// → grant received).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Flow {
    /// Correlation id; both endpoints must derive the same value.
    pub id: u64,
    /// Whether this endpoint starts or finishes the arrow.
    pub dir: FlowDir,
}

/// One recorded operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpanRecord {
    /// What happened.
    pub kind: SpanKind,
    /// Node the record belongs to (timeline process).
    pub node: usize,
    /// Lane within the node (timeline thread).
    pub track: Track,
    /// Start of the span, or the moment of an instant.
    pub start: Time,
    /// Duration; [`Dur::ZERO`] for instants.
    pub dur: Dur,
    /// Kind-specific argument (page, lock, barrier, peer node…).
    pub arg: u64,
    /// Optional flow-arrow endpoint.
    pub flow: Option<Flow>,
    /// The protocol operation this record belongs to (see
    /// [`op_class`]); `0` means unattributed.
    pub op: u64,
}

impl SpanRecord {
    /// End of the span (equals `start` for instants).
    pub fn end(&self) -> Time {
        self.start + self.dur
    }
}

/// Deterministic flow id for a lock handoff, computed independently on
/// the granting and receiving NI from the grant's wait tag.
pub fn flow_lock_id(lock: u64, tag: u64) -> u64 {
    mix(lock.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ tag ^ 0x4c6f_636b)
}

/// Deterministic flow id for a direct-diff deposit, computed at the
/// writer and again at the home from `(writer, interval, page)`.
pub fn flow_diff_id(writer: u64, interval: u64, page: u64) -> u64 {
    mix(writer
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(interval.rotate_left(17))
        .wrapping_add(page.wrapping_mul(0x2545_f491_4f6c_dd1d))
        ^ 0x4469_6666)
}

/// Deterministic flow id for one tree edge of a collective epoch,
/// computed at both ends from `(coll, epoch, child)` — the child node
/// names the edge for fan-in (child → parent) and fan-out (parent →
/// child) alike.
pub fn flow_coll_id(coll: u64, epoch: u64, child: u64) -> u64 {
    mix(coll
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(epoch.rotate_left(23))
        .wrapping_add(child.wrapping_mul(0x2545_f491_4f6c_dd1d))
        ^ 0x436f_6c6c)
}

/// The class of protocol operation an op id names, decoded from the
/// id's top bits — ids are self-describing, so the profiler needs no
/// side table.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum OpClass {
    /// A page fetch: fault to copy installed.
    Fetch,
    /// A lock acquire or handoff: request to grant.
    Lock,
    /// One barrier epoch: last arrival decision to releases applied.
    Barrier,
    /// One diff's journey: computed at the writer, applied at the home.
    Diff,
}

impl OpClass {
    /// Every class, in display order.
    pub const ALL: [OpClass; 4] = [
        OpClass::Fetch,
        OpClass::Lock,
        OpClass::Barrier,
        OpClass::Diff,
    ];

    /// Stable name used in reports and folded stacks.
    pub fn name(self) -> &'static str {
        match self {
            OpClass::Fetch => "fetch",
            OpClass::Lock => "lock",
            OpClass::Barrier => "barrier",
            OpClass::Diff => "diff",
        }
    }
}

const OP_CLASS_SHIFT: u32 = 61;
const OP_BODY_MASK: u64 = (1 << OP_CLASS_SHIFT) - 1;

/// Op id for the `seq`-th page-fetch operation of a run.
pub fn op_fetch_id(seq: u64) -> u64 {
    (1 << OP_CLASS_SHIFT) | (seq & OP_BODY_MASK)
}

/// Op id for the `seq`-th lock acquire/handoff operation of a run.
pub fn op_lock_id(seq: u64) -> u64 {
    (2 << OP_CLASS_SHIFT) | (seq & OP_BODY_MASK)
}

/// Op id for one barrier epoch, computed structurally from
/// `(barrier, epoch)` so the host manager, the NI collective tree,
/// and every releasing node derive the same id independently.
pub fn op_barrier_id(barrier: u64, epoch: u64) -> u64 {
    let body = mix(barrier
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(epoch.rotate_left(29))
        ^ 0x4261_7272);
    (3 << OP_CLASS_SHIFT) | (body & OP_BODY_MASK)
}

/// Op id for one diff's deposit→apply journey, computed structurally
/// from `(writer, interval, page)` at the writer and the home alike —
/// the same tuple that names the flow arrow ([`flow_diff_id`]).
pub fn op_diff_id(writer: u64, interval: u64, page: u64) -> u64 {
    let body = mix(writer
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(interval.rotate_left(11))
        .wrapping_add(page.wrapping_mul(0x2545_f491_4f6c_dd1d))
        ^ 0x4f70_4464);
    (4 << OP_CLASS_SHIFT) | (body & OP_BODY_MASK)
}

/// Decodes the class of an op id; `None` for `0` (unattributed) and
/// for bit patterns no constructor produces.
pub fn op_class(op: u64) -> Option<OpClass> {
    match op >> OP_CLASS_SHIFT {
        1 => Some(OpClass::Fetch),
        2 => Some(OpClass::Lock),
        3 => Some(OpClass::Barrier),
        4 => Some(OpClass::Diff),
        // An integer tag match cannot be exhaustive; anything a
        // constructor never produces is simply unattributed.
        _ => None, // lint: allow-wildcard
    }
}

fn mix(mut x: u64) -> u64 {
    x ^= x >> 33;
    x = x.wrapping_mul(0xff51_afd7_ed55_8ccd);
    x ^= x >> 33;
    x = x.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    x ^ (x >> 33)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_unique() {
        let mut names: Vec<&str> = SpanKind::ALL.iter().map(|k| k.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), SpanKind::ALL.len());
    }

    #[test]
    fn instants_have_fault_and_flow_kinds() {
        assert!(SpanKind::FaultDrop.is_instant());
        assert!(SpanKind::DirectDiffDeposit.is_instant());
        assert!(!SpanKind::PageFetch.is_instant());
        assert!(!SpanKind::NiLockService.is_instant());
    }

    #[test]
    fn flow_ids_agree_across_sides() {
        assert_eq!(flow_lock_id(3, 41), flow_lock_id(3, 41));
        assert_ne!(flow_lock_id(3, 41), flow_lock_id(3, 42));
        assert_eq!(flow_diff_id(1, 2, 3), flow_diff_id(1, 2, 3));
        assert_ne!(flow_diff_id(1, 2, 3), flow_diff_id(2, 2, 3));
    }

    #[test]
    fn span_end_adds_duration() {
        let r = SpanRecord {
            kind: SpanKind::PageFetch,
            node: 0,
            track: Track::Host,
            start: Time::from_ns(100),
            dur: Dur::from_ns(50),
            arg: 7,
            flow: None,
            op: 0,
        };
        assert_eq!(r.end(), Time::from_ns(150));
        assert_eq!(Track::Firmware.tid(), 1);
    }

    #[test]
    fn op_ids_are_self_describing() {
        assert_eq!(op_class(op_fetch_id(7)), Some(OpClass::Fetch));
        assert_eq!(op_class(op_lock_id(7)), Some(OpClass::Lock));
        assert_eq!(op_class(op_barrier_id(2, 5)), Some(OpClass::Barrier));
        assert_eq!(op_class(op_diff_id(1, 2, 3)), Some(OpClass::Diff));
        assert_eq!(op_class(0), None);
        // Same seq, different class → different id.
        assert_ne!(op_fetch_id(7), op_lock_id(7));
        // Structural ids agree across independent derivations.
        assert_eq!(op_barrier_id(2, 5), op_barrier_id(2, 5));
        assert_ne!(op_barrier_id(2, 5), op_barrier_id(2, 6));
        assert_eq!(op_diff_id(1, 2, 3), op_diff_id(1, 2, 3));
        assert_ne!(op_diff_id(1, 2, 3), op_diff_id(1, 3, 3));
    }
}
