//! The recorder: bounded per-node ring buffers of [`SpanRecord`]s.
//!
//! The overhead contract: when observability is *off* no recorder is
//! constructed at all — instrumented components hold `Option<ObsHandle>
//! = None` and every emission site is a single branch on that option,
//! exactly the pattern the audit-trace sinks already use. When *on*,
//! each node's records live in a ring of fixed capacity; once full, the
//! oldest record is evicted and counted in `dropped`, so memory stays
//! bounded no matter how long the run is.

use crate::span::{Flow, SpanKind, SpanRecord, Track};
use genima_sim::{Dur, Time};
use std::cell::RefCell;
use std::collections::{HashMap, VecDeque};
use std::rc::Rc;

/// Shared handle to a [`Recorder`]; the simulator is single-threaded,
/// so `Rc<RefCell<…>>` suffices (same precedent as the fault
/// injector's `StatsHandle`).
pub type ObsHandle = Rc<RefCell<Recorder>>;

/// Observability configuration carried by `RunConfig`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ObsConfig {
    /// Whether a recorder is installed at all.
    pub enabled: bool,
    /// Per-node ring capacity (records); ignored when disabled.
    pub ring_capacity: usize,
}

impl ObsConfig {
    /// Default per-node ring capacity.
    pub const DEFAULT_RING: usize = 1 << 16;

    /// Observability disabled: no recorder, no allocations, the run is
    /// bit-identical to an unobserved one.
    pub fn off() -> ObsConfig {
        ObsConfig {
            enabled: false,
            ring_capacity: 0,
        }
    }

    /// Observability enabled with the default ring capacity.
    pub fn on() -> ObsConfig {
        ObsConfig {
            enabled: true,
            ring_capacity: ObsConfig::DEFAULT_RING,
        }
    }

    /// Enabled with an explicit per-node ring capacity (min 1).
    pub fn with_capacity(cap: usize) -> ObsConfig {
        ObsConfig {
            enabled: true,
            ring_capacity: cap.max(1),
        }
    }
}

impl Default for ObsConfig {
    fn default() -> ObsConfig {
        ObsConfig::off()
    }
}

#[derive(Debug, Default)]
struct Ring {
    buf: VecDeque<SpanRecord>,
    dropped: u64,
}

/// Collects [`SpanRecord`]s into bounded per-node rings.
///
/// The recorder also carries the run's *tag→op* binding table: the
/// protocol layer binds each wire tag it allocates to the operation it
/// serves, and every downstream emission site (NI firmware, wire
/// delivery) resolves the packet's tag back to the op id without the
/// wire formats knowing anything about tracing.
#[derive(Debug)]
pub struct Recorder {
    rings: Vec<Ring>,
    capacity: usize,
    ops: HashMap<u64, u64>,
}

impl Recorder {
    /// Creates a recorder for `nodes` nodes with per-node `capacity`.
    pub fn new(nodes: usize, capacity: usize) -> Recorder {
        let capacity = capacity.max(1);
        let mut rings = Vec::with_capacity(nodes);
        for _ in 0..nodes {
            rings.push(Ring::default());
        }
        Recorder {
            rings,
            capacity,
            ops: HashMap::new(),
        }
    }

    /// Binds wire tag `tag` to operation `op`. Tag `0` (`Tag::NONE`)
    /// and op `0` are never bound.
    pub fn bind_op(&mut self, tag: u64, op: u64) {
        if tag != 0 && op != 0 {
            self.ops.insert(tag, op);
        }
    }

    /// The operation bound to `tag`, or `0` when unbound.
    pub fn op_for(&self, tag: u64) -> u64 {
        self.ops.get(&tag).copied().unwrap_or(0)
    }

    /// Removes a tag binding once its pending transaction is consumed.
    pub fn unbind_op(&mut self, tag: u64) {
        self.ops.remove(&tag);
    }

    /// Creates a shared handle per `cfg`; `None` when disabled.
    pub fn shared(nodes: usize, cfg: &ObsConfig) -> Option<ObsHandle> {
        if cfg.enabled {
            Some(Rc::new(RefCell::new(Recorder::new(
                nodes,
                cfg.ring_capacity,
            ))))
        } else {
            None
        }
    }

    /// Appends a record, evicting the oldest when the node's ring is
    /// full. Rings grow on demand if `node` exceeds the initial count.
    pub fn record(&mut self, rec: SpanRecord) {
        while self.rings.len() <= rec.node {
            self.rings.push(Ring::default());
        }
        let ring = &mut self.rings[rec.node];
        if ring.buf.len() >= self.capacity {
            ring.buf.pop_front();
            ring.dropped += 1;
        }
        ring.buf.push_back(rec);
    }

    /// Records a span from `start` to `end` on a node's track.
    pub fn span(
        &mut self,
        kind: SpanKind,
        node: usize,
        track: Track,
        start: Time,
        end: Time,
        arg: u64,
    ) {
        self.span_op(kind, node, track, start, end, arg, 0);
    }

    /// Records a span attributed to operation `op` (`0` = none).
    #[allow(clippy::too_many_arguments)]
    pub fn span_op(
        &mut self,
        kind: SpanKind,
        node: usize,
        track: Track,
        start: Time,
        end: Time,
        arg: u64,
        op: u64,
    ) {
        self.record(SpanRecord {
            kind,
            node,
            track,
            start,
            dur: end.saturating_since(start),
            arg,
            flow: None,
            op,
        });
    }

    /// Records a zero-duration instant.
    pub fn instant(&mut self, kind: SpanKind, node: usize, track: Track, at: Time, arg: u64) {
        self.instant_op(kind, node, track, at, arg, 0);
    }

    /// Records an instant attributed to operation `op` (`0` = none).
    pub fn instant_op(
        &mut self,
        kind: SpanKind,
        node: usize,
        track: Track,
        at: Time,
        arg: u64,
        op: u64,
    ) {
        self.record(SpanRecord {
            kind,
            node,
            track,
            start: at,
            dur: Dur::ZERO,
            arg,
            flow: None,
            op,
        });
    }

    /// Records an instant that is one endpoint of a flow arrow.
    pub fn instant_flow(
        &mut self,
        kind: SpanKind,
        node: usize,
        track: Track,
        at: Time,
        arg: u64,
        flow: Flow,
    ) {
        self.instant_flow_op(kind, node, track, at, arg, flow, 0);
    }

    /// Records a flow-endpoint instant attributed to operation `op`.
    #[allow(clippy::too_many_arguments)]
    pub fn instant_flow_op(
        &mut self,
        kind: SpanKind,
        node: usize,
        track: Track,
        at: Time,
        arg: u64,
        flow: Flow,
        op: u64,
    ) {
        self.record(SpanRecord {
            kind,
            node,
            track,
            start: at,
            dur: Dur::ZERO,
            arg,
            flow: Some(flow),
            op,
        });
    }

    /// Total records currently held across all rings.
    pub fn len(&self) -> usize {
        self.rings.iter().map(|r| r.buf.len()).sum()
    }

    /// True when no records are held.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drains every ring into a time-sorted [`ObsReport`].
    pub fn take(&mut self) -> ObsReport {
        let mut spans = Vec::with_capacity(self.len());
        let mut dropped = 0;
        let mut dropped_by_node = Vec::with_capacity(self.rings.len());
        for ring in &mut self.rings {
            spans.extend(ring.buf.drain(..));
            dropped += ring.dropped;
            dropped_by_node.push(ring.dropped);
            ring.dropped = 0;
        }
        self.ops.clear();
        spans.sort_by_key(|s| (s.start, s.node, s.track.tid(), s.kind.name()));
        ObsReport {
            spans,
            dropped,
            dropped_by_node,
        }
    }
}

/// The drained result of an observed run.
#[derive(Clone, Debug, Default)]
pub struct ObsReport {
    /// All records, sorted by start time.
    pub spans: Vec<SpanRecord>,
    /// Records evicted because a ring overflowed.
    pub dropped: u64,
    /// Per-node eviction counts (index = node). A non-zero entry means
    /// that node's timeline is truncated and attribution over it is
    /// incomplete.
    pub dropped_by_node: Vec<u64>,
}

impl ObsReport {
    /// Number of records of one kind.
    pub fn count(&self, kind: SpanKind) -> usize {
        self.spans.iter().filter(|s| s.kind == kind).count()
    }

    /// Iterator over records of one kind.
    pub fn of_kind(&self, kind: SpanKind) -> impl Iterator<Item = &SpanRecord> {
        self.spans.iter().filter(move |s| s.kind == kind)
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(node: usize, ns: u64) -> SpanRecord {
        SpanRecord {
            kind: SpanKind::PageFetch,
            node,
            track: Track::Host,
            start: Time::from_ns(ns),
            dur: Dur::from_ns(10),
            arg: 0,
            flow: None,
            op: 0,
        }
    }

    #[test]
    fn off_config_creates_no_handle() {
        assert!(Recorder::shared(4, &ObsConfig::off()).is_none());
        assert!(Recorder::shared(4, &ObsConfig::on()).is_some());
    }

    #[test]
    fn ring_bounds_and_counts_evictions() {
        let mut r = Recorder::new(1, 3);
        for i in 0..5 {
            r.record(rec(0, i));
        }
        let report = r.take();
        assert_eq!(report.spans.len(), 3);
        assert_eq!(report.dropped, 2);
        assert_eq!(report.dropped_by_node, vec![2]);
        // Oldest evicted: survivors are 2, 3, 4.
        assert_eq!(report.spans[0].start, Time::from_ns(2));
    }

    #[test]
    fn op_bindings_resolve_and_clear() {
        let mut r = Recorder::new(1, 8);
        r.bind_op(7, 42);
        r.bind_op(0, 99); // Tag::NONE never binds
        assert_eq!(r.op_for(7), 42);
        assert_eq!(r.op_for(0), 0);
        r.unbind_op(7);
        assert_eq!(r.op_for(7), 0);
    }

    #[test]
    fn take_sorts_across_nodes() {
        let mut r = Recorder::new(2, 16);
        r.record(rec(1, 50));
        r.record(rec(0, 20));
        r.record(rec(1, 10));
        let report = r.take();
        let starts: Vec<u64> = report.spans.iter().map(|s| s.start.as_ns()).collect();
        assert_eq!(starts, vec![10, 20, 50]);
        assert!(r.take().spans.is_empty());
    }

    #[test]
    fn rings_grow_on_demand() {
        let mut r = Recorder::new(1, 8);
        r.record(rec(5, 1));
        assert_eq!(r.len(), 1);
        assert_eq!(r.take().spans[0].node, 5);
    }

    #[test]
    fn report_count_by_kind() {
        let mut r = Recorder::new(1, 8);
        r.span(
            SpanKind::LockAcquire,
            0,
            Track::Host,
            Time::from_ns(0),
            Time::from_ns(5),
            9,
        );
        r.instant(
            SpanKind::Retransmit,
            0,
            Track::Firmware,
            Time::from_ns(3),
            1,
        );
        let report = r.take();
        assert_eq!(report.count(SpanKind::LockAcquire), 1);
        assert_eq!(report.count(SpanKind::Retransmit), 1);
        assert_eq!(report.count(SpanKind::PageFetch), 0);
        assert_eq!(
            report.of_kind(SpanKind::LockAcquire).next().map(|s| s.arg),
            Some(9)
        );
    }
}
