//! A minimal, order-preserving JSON value with a hand-rolled emitter
//! and recursive-descent parser.
//!
//! The container is offline: no serde, no external crates. This covers
//! exactly what the observability layer needs — emitting `RunReport`s,
//! timelines and `BENCH_*.json` files, and parsing them back for
//! schema checks and summaries.

use std::fmt;

/// A JSON value. Objects preserve insertion order so emitted files are
/// stable and diffable across runs.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (stored as `f64`; integral values print without a
    /// fraction).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

/// A parse failure: byte offset plus description.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub pos: usize,
    /// What went wrong.
    pub what: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.pos, self.what)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Convenience constructor for strings.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Convenience constructor for numbers.
    pub fn num(n: impl Into<f64>) -> Json {
        Json::Num(n.into())
    }

    /// A `u64` as a JSON number (lossless below 2^53, which covers
    /// every counter the simulator produces).
    pub fn u64(n: u64) -> Json {
        Json::Num(n as f64)
    }

    /// An empty object.
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Inserts a key into an object (panics on non-objects — a
    /// programming error, not a data error).
    pub fn set(&mut self, key: impl Into<String>, value: Json) -> &mut Json {
        if let Json::Obj(entries) = self {
            entries.push((key.into(), value));
        } else {
            panic!("Json::set on a non-object");
        }
        self
    }

    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        if let Json::Obj(entries) = self {
            for (k, v) in entries {
                if k == key {
                    return Some(v);
                }
            }
        }
        None
    }

    /// Array element lookup.
    pub fn idx(&self, i: usize) -> Option<&Json> {
        if let Json::Arr(items) = self {
            items.get(i)
        } else {
            None
        }
    }

    /// The array items, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        if let Json::Arr(items) = self {
            Some(items)
        } else {
            None
        }
    }

    /// The object entries, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        if let Json::Obj(entries) = self {
            Some(entries)
        } else {
            None
        }
    }

    /// The number, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        if let Json::Num(n) = self {
            Some(*n)
        } else {
            None
        }
    }

    /// The number as `u64`, if integral and in range.
    pub fn as_u64(&self) -> Option<u64> {
        self.as_f64().and_then(|n| {
            if n >= 0.0 && n.fract() == 0.0 && n <= u64::MAX as f64 {
                Some(n as u64)
            } else {
                None
            }
        })
    }

    /// The string, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        if let Json::Str(s) = self {
            Some(s)
        } else {
            None
        }
    }

    /// The boolean, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        if let Json::Bool(b) = self {
            Some(*b)
        } else {
            None
        }
    }

    /// Emits compact JSON text.
    pub fn dump(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(n) => write_num(*n, out),
            Json::Str(s) => write_str(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(entries) => {
                out.push('{');
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_str(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses JSON text.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after value"));
        }
        Ok(value)
    }
}

fn write_num(n: f64, out: &mut String) {
    if !n.is_finite() {
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < 9.0e15 {
        let _ = fmt::write(out, format_args!("{}", n as i64));
    } else {
        let _ = fmt::write(out, format_args!("{n}"));
    }
}

fn write_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = fmt::write(out, format_args!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, what: &str) -> JsonError {
        JsonError {
            pos: self.pos,
            what: what.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.peek() {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected {word}")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => Err(self.err(&format!("unexpected byte {:?}", b as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                Some(other) => {
                    let bad = other as char;
                    return Err(self.err(&format!("expected ',' or ']' in array, got {bad:?}")));
                }
                None => return Err(self.err("unterminated array")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(entries));
                }
                Some(other) => {
                    let bad = other as char;
                    return Err(self.err(&format!("expected ',' or '}}' in object, got {bad:?}")));
                }
                None => return Err(self.err("unterminated object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_e| self.err("invalid utf-8 in string"))?;
                out.push_str(chunk);
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    self.escape(&mut out)?;
                }
                Some(ctrl) => {
                    let bad = ctrl;
                    return Err(self.err(&format!("control character {bad:#x} in string")));
                }
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn escape(&mut self, out: &mut String) -> Result<(), JsonError> {
        let b = self.peek().ok_or_else(|| self.err("truncated escape"))?;
        self.pos += 1;
        match b {
            b'"' => out.push('"'),
            b'\\' => out.push('\\'),
            b'/' => out.push('/'),
            b'b' => out.push('\u{8}'),
            b'f' => out.push('\u{c}'),
            b'n' => out.push('\n'),
            b'r' => out.push('\r'),
            b't' => out.push('\t'),
            b'u' => {
                let code = self.hex4()?;
                // Surrogate pairs: a high surrogate must be followed by
                // an escaped low surrogate.
                let c = if (0xd800..0xdc00).contains(&code) {
                    if self.peek() == Some(b'\\') {
                        self.pos += 1;
                        self.expect(b'u')?;
                        let low = self.hex4()?;
                        if !(0xdc00..0xe000).contains(&low) {
                            return Err(self.err("invalid low surrogate"));
                        }
                        let combined =
                            0x10000 + (((code - 0xd800) as u32) << 10) + (low - 0xdc00) as u32;
                        char::from_u32(combined)
                    } else {
                        None
                    }
                } else {
                    char::from_u32(code as u32)
                };
                out.push(c.ok_or_else(|| self.err("invalid \\u escape"))?);
            }
            bad => {
                return Err(self.err(&format!("unknown escape {:?}", bad as char)));
            }
        }
        Ok(())
    }

    fn hex4(&mut self) -> Result<u16, JsonError> {
        let mut code: u16 = 0;
        for _ in 0..4 {
            let b = self.peek().ok_or_else(|| self.err("truncated \\u"))?;
            let digit = (b as char)
                .to_digit(16)
                .ok_or_else(|| self.err("bad hex digit"))?;
            code = (code << 4) | digit as u16;
            self.pos += 1;
        }
        Ok(code)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || b == b'.' || b == b'e' || b == b'E' || b == b'+' || b == b'-' {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_e| self.err("invalid number bytes"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_e| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_object() {
        let mut j = Json::obj();
        j.set("name", Json::str("lu"))
            .set("finish_ns", Json::u64(123456789))
            .set("ratio", Json::num(0.25))
            .set("ok", Json::Bool(true))
            .set("none", Json::Null)
            .set("rows", Json::Arr(vec![Json::u64(1), Json::u64(2)]));
        let text = j.dump();
        let back = Json::parse(&text).expect("parse");
        assert_eq!(back, j);
        assert_eq!(back.get("name").and_then(|v| v.as_str()), Some("lu"));
        assert_eq!(
            back.get("finish_ns").and_then(|v| v.as_u64()),
            Some(123456789)
        );
        assert_eq!(back.get("ratio").and_then(|v| v.as_f64()), Some(0.25));
        assert_eq!(
            back.get("rows")
                .and_then(|v| v.idx(1))
                .and_then(|v| v.as_u64()),
            Some(2)
        );
    }

    #[test]
    fn integral_numbers_print_without_fraction() {
        assert_eq!(Json::u64(42).dump(), "42");
        assert_eq!(Json::num(2.5).dump(), "2.5");
        assert_eq!(Json::Num(f64::NAN).dump(), "null");
        assert_eq!(Json::Num(-0.0).dump(), "0");
    }

    #[test]
    fn string_escapes_roundtrip() {
        let s = "a\"b\\c\nd\te\u{1}f — π";
        let dumped = Json::str(s).dump();
        assert_eq!(Json::parse(&dumped).expect("parse"), Json::str(s));
    }

    #[test]
    fn unicode_escapes_parse() {
        assert_eq!(
            Json::parse("\"\\u00e9\\ud83d\\ude00\"").expect("parse"),
            Json::str("é😀")
        );
    }

    #[test]
    fn whitespace_and_nesting() {
        let text = " { \"a\" : [ 1 , { \"b\" : null } , true ] } ";
        let j = Json::parse(text).expect("parse");
        assert_eq!(
            j.get("a").and_then(|a| a.idx(1)).and_then(|o| o.get("b")),
            Some(&Json::Null)
        );
    }

    #[test]
    fn errors_carry_position() {
        let e = Json::parse("{\"a\": }").expect_err("should fail");
        assert!(e.pos > 0);
        assert!(Json::parse("[1, 2").is_err());
        assert!(Json::parse("12 34").is_err());
        assert!(Json::parse("").is_err());
        assert!(Json::parse("\"\\ud800\"").is_err());
    }

    #[test]
    fn scientific_numbers() {
        assert_eq!(Json::parse("1.5e3").expect("parse").as_f64(), Some(1500.0));
        assert_eq!(Json::parse("-4").expect("parse").as_f64(), Some(-4.0));
        assert_eq!(Json::parse("-4").expect("parse").as_u64(), None);
    }
}
