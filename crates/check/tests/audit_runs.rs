//! End-to-end protocol audits: run real workloads under every paper
//! configuration with tracing on and replay the traces against the
//! protocol invariants.

use genima_apps::{App, BarnesOriginal, OceanRowwise, WaterNsquared};
use genima_check::{run_app_audited, run_app_audited_on, run_app_audited_on_with};
use genima_fault::{FaultPlan, PlanInjector};
use genima_proto::{Column, FeatureSet, Topology};
use genima_sim::RunSeed;

/// Every invariant holds for a barrier-heavy stencil and a lock-heavy
/// molecular-dynamics workload under all five protocol columns.
#[test]
fn auditor_is_clean_across_all_five_configurations() {
    let topo = Topology::new(2, 2);
    let apps: Vec<Box<dyn App>> = vec![
        Box::new(OceanRowwise::with_grid(128, 2)),
        Box::new(WaterNsquared::with_molecules(256, 1)),
        Box::new(BarnesOriginal::with_bodies(512, 1)),
    ];
    for app in &apps {
        for features in FeatureSet::ALL {
            let run = run_app_audited(app.as_ref(), topo, features);
            assert!(
                run.audit.is_clean(),
                "{} under {}: {}",
                app.name(),
                features.name(),
                run.audit
            );
            assert!(
                run.audit.proto_events > 0,
                "{} under {}: tracing recorded nothing",
                app.name(),
                features.name()
            );
        }
    }
}

/// The sixth column: the full GeNIMA protocol on the 2025 RNIC audits
/// clean on every workload, with masked-CAS locks replacing the
/// firmware lock machines (so the NI lock-chain trace is empty) and
/// RDMA completions replacing host interrupts entirely.
#[test]
fn genima_2025_audits_clean_across_workloads() {
    let topo = Topology::new(2, 2);
    let apps: Vec<Box<dyn App>> = vec![
        Box::new(OceanRowwise::with_grid(128, 2)),
        Box::new(WaterNsquared::with_molecules(256, 1)),
        Box::new(BarnesOriginal::with_bodies(512, 1)),
    ];
    for app in &apps {
        let run = run_app_audited_on(app.as_ref(), topo, Column::genima_2025());
        assert!(
            run.audit.is_clean(),
            "{} under GeNIMA-2025: {}",
            app.name(),
            run.audit
        );
        assert!(run.audit.proto_events > 0, "tracing recorded nothing");
        assert_eq!(
            run.audit.lock_events, 0,
            "masked-CAS locks bypass the firmware lock machines"
        );
        assert_eq!(
            run.report.counters.interrupts,
            0,
            "{}: the RNIC column must be interrupt-free",
            app.name()
        );
        assert!(
            run.report.ni.doorbells > 0 && run.report.ni.cqes > 0,
            "{}: RNIC counters must move (doorbells {}, cqes {})",
            app.name(),
            run.report.ni.doorbells,
            run.report.ni.cqes
        );
    }
}

/// Acceptance gate: GeNIMA-2025 survives 10% packet loss plus
/// duplication with every protocol invariant intact and still zero
/// host interrupts — seq/retry recovery comes with the deterministic
/// transport, not from asynchronous host processing.
#[test]
fn genima_2025_audits_clean_at_ten_percent_loss() {
    let app = OceanRowwise::with_grid(96, 2);
    let topo = Topology::new(4, 1);
    let plan = FaultPlan::new().drop_rate(0.10).duplicate_rate(0.05);
    let injector = PlanInjector::new(plan, RunSeed::new(0x2025));
    let stats = injector.stats_handle();
    let run = run_app_audited_on_with(&app, topo, Column::genima_2025(), |sys| {
        sys.set_fault_injector(Box::new(injector));
    })
    .unwrap_or_else(|e| panic!("GeNIMA-2025 aborted under 10% loss: {e}"));
    assert!(
        run.audit.is_clean(),
        "invariant violations under faults: {:?}",
        run.audit.violations
    );
    assert_eq!(
        run.report.counters.interrupts, 0,
        "recovery must not reintroduce host interrupts"
    );
    let s = stats.borrow();
    assert!(s.dropped > 0, "10% loss must actually hit live traffic");
    assert_eq!(
        run.report.recovery.retransmits, s.dropped,
        "every drop is retransmitted (deterministic for this seed)"
    );
}

/// The zero-interrupt invariant (paper §2.3): host interrupts vanish
/// exactly when the full GeNIMA feature set is enabled. Base must
/// take interrupts (everything is host-driven); GeNIMA exactly none.
#[test]
fn interrupts_vanish_exactly_under_genima() {
    let topo = Topology::new(2, 2);
    let app = WaterNsquared::with_molecules(256, 1);
    for features in FeatureSet::ALL {
        let run = run_app_audited(&app, topo, features);
        let interrupts = run.report.counters.interrupts;
        if features.interrupt_free() {
            assert_eq!(interrupts, 0, "{} must be interrupt-free", features.name());
        } else {
            assert!(
                interrupts > 0,
                "{} is host-driven and must take interrupts",
                features.name()
            );
        }
    }
}

/// NI locks only exist under GeNIMA: the firmware lock trace is
/// non-empty there and the single-owner replay holds (checked inside
/// the audit); host-driven configurations produce no NI lock events.
#[test]
fn ni_lock_trace_appears_only_under_genima() {
    let topo = Topology::new(2, 2);
    let app = WaterNsquared::with_molecules(256, 1);
    for features in FeatureSet::ALL {
        let run = run_app_audited(&app, topo, features);
        if features.interrupt_free() {
            assert!(
                run.audit.lock_events > 0,
                "GeNIMA runs NI locks; the firmware must trace transfers"
            );
        } else {
            assert_eq!(
                run.audit.lock_events,
                0,
                "{} uses host locks, not NI locks",
                features.name()
            );
        }
    }
}
