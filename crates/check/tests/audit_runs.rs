//! End-to-end protocol audits: run real workloads under every paper
//! configuration with tracing on and replay the traces against the
//! protocol invariants.

use genima_apps::{App, BarnesOriginal, OceanRowwise, WaterNsquared};
use genima_check::run_app_audited;
use genima_proto::{FeatureSet, Topology};

/// Every invariant holds for a barrier-heavy stencil and a lock-heavy
/// molecular-dynamics workload under all five protocol columns.
#[test]
fn auditor_is_clean_across_all_five_configurations() {
    let topo = Topology::new(2, 2);
    let apps: Vec<Box<dyn App>> = vec![
        Box::new(OceanRowwise::with_grid(128, 2)),
        Box::new(WaterNsquared::with_molecules(256, 1)),
        Box::new(BarnesOriginal::with_bodies(512, 1)),
    ];
    for app in &apps {
        for features in FeatureSet::ALL {
            let run = run_app_audited(app.as_ref(), topo, features);
            assert!(
                run.audit.is_clean(),
                "{} under {}: {}",
                app.name(),
                features.name(),
                run.audit
            );
            assert!(
                run.audit.proto_events > 0,
                "{} under {}: tracing recorded nothing",
                app.name(),
                features.name()
            );
        }
    }
}

/// The zero-interrupt invariant (paper §2.3): host interrupts vanish
/// exactly when the full GeNIMA feature set is enabled. Base must
/// take interrupts (everything is host-driven); GeNIMA exactly none.
#[test]
fn interrupts_vanish_exactly_under_genima() {
    let topo = Topology::new(2, 2);
    let app = WaterNsquared::with_molecules(256, 1);
    for features in FeatureSet::ALL {
        let run = run_app_audited(&app, topo, features);
        let interrupts = run.report.counters.interrupts;
        if features.interrupt_free() {
            assert_eq!(interrupts, 0, "{} must be interrupt-free", features.name());
        } else {
            assert!(
                interrupts > 0,
                "{} is host-driven and must take interrupts",
                features.name()
            );
        }
    }
}

/// NI locks only exist under GeNIMA: the firmware lock trace is
/// non-empty there and the single-owner replay holds (checked inside
/// the audit); host-driven configurations produce no NI lock events.
#[test]
fn ni_lock_trace_appears_only_under_genima() {
    let topo = Topology::new(2, 2);
    let app = WaterNsquared::with_molecules(256, 1);
    for features in FeatureSet::ALL {
        let run = run_app_audited(&app, topo, features);
        if features.interrupt_free() {
            assert!(
                run.audit.lock_events > 0,
                "GeNIMA runs NI locks; the firmware must trace transfers"
            );
        } else {
            assert_eq!(
                run.audit.lock_events,
                0,
                "{} uses host locks, not NI locks",
                features.name()
            );
        }
    }
}
