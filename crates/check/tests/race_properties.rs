//! Property tests for the race detector: over randomly generated
//! access patterns, a lock-ordered schedule is never flagged, and
//! stripping the locks from the *same* accesses is flagged exactly
//! when two processes touch the same word.

use genima_check::detect_races;
use genima_proto::{Addr, LockId, Op};
use proptest::prelude::*;

/// One word of shared state per lock; lock `l` guards word `l`.
fn guarded_word(l: u8) -> Addr {
    Addr::new(u64::from(l) * 8)
}

/// Builds each process's stream from its critical-section schedule.
/// With `locked`, every shared write is wrapped in the guarding
/// lock's acquire/release; without, the writes stand bare.
fn build_streams(schedules: &[Vec<u8>], locked: bool) -> Vec<Vec<Op>> {
    schedules
        .iter()
        .enumerate()
        .map(|(me, sections)| {
            let mut ops = Vec::new();
            for &l in sections {
                if locked {
                    ops.push(Op::Acquire(LockId::new(l as usize)));
                }
                ops.push(Op::Write {
                    addr: guarded_word(l),
                    len: 8,
                });
                if locked {
                    ops.push(Op::Release(LockId::new(l as usize)));
                }
                // A private word per process never conflicts.
                ops.push(Op::Write {
                    addr: Addr::new(4096 + me as u64 * 8),
                    len: 8,
                });
            }
            ops
        })
        .collect()
}

/// `true` when two different processes write the same guarded word —
/// the condition under which the unlocked permutation must race.
fn has_cross_proc_conflict(schedules: &[Vec<u8>]) -> bool {
    schedules.iter().enumerate().any(|(i, a)| {
        schedules
            .iter()
            .skip(i + 1)
            .any(|b| a.iter().any(|l| b.contains(l)))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The same multiset of shared accesses, lock-ordered versus bare:
    /// the ordered schedule is clean, the bare one races exactly when
    /// two processes share a word.
    #[test]
    fn lock_ordering_separates_racy_from_race_free(
        schedules in proptest::collection::vec(
            proptest::collection::vec(0u8..4, 1..8),
            2..5,
        ),
    ) {
        let locked = detect_races(&build_streams(&schedules, true))
            .expect("locked streams schedule");
        prop_assert!(
            locked.is_empty(),
            "lock-ordered schedule flagged: {locked:?} for {schedules:?}"
        );

        let bare = detect_races(&build_streams(&schedules, false))
            .expect("bare streams schedule");
        prop_assert_eq!(
            !bare.is_empty(),
            has_cross_proc_conflict(&schedules),
            "bare schedule misjudged for {:?}: {:?}",
            &schedules,
            &bare
        );
    }
}
