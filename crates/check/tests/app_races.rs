//! Every paper workload must be race-free: release consistency only
//! promises coherent data to properly-labelled programs, so a racy op
//! stream would invalidate every measurement taken from it.

use genima_apps::all_apps;
use genima_check::{check_app_races, detect_races};
use genima_proto::{Addr, Op, Topology};

#[test]
fn all_paper_workloads_are_race_free() {
    let topo = Topology::new(4, 4);
    for app in all_apps() {
        let races = check_app_races(app.as_ref(), topo)
            .unwrap_or_else(|e| panic!("{} streams do not schedule: {e}", app.name()));
        assert!(
            races.is_empty(),
            "{} has {} race(s); first: {:?}",
            app.name(),
            races.len(),
            races[0]
        );
    }
}

#[test]
fn workloads_stay_race_free_on_a_small_cluster() {
    let topo = Topology::new(2, 2);
    for app in all_apps() {
        let races = check_app_races(app.as_ref(), topo)
            .unwrap_or_else(|e| panic!("{} streams do not schedule: {e}", app.name()));
        assert!(races.is_empty(), "{}: {races:?}", app.name());
    }
}

/// The detector itself is not vacuous: a deliberately racy pair of
/// streams — two processes writing the same word with no ordering —
/// must be flagged.
#[test]
fn seeded_racy_stream_is_flagged() {
    let w = Op::Write {
        addr: Addr::new(4096),
        len: 8,
    };
    let races = detect_races(&[vec![w.clone()], vec![w]]).expect("schedules");
    assert_eq!(races.len(), 1, "seeded race must be detected");
}
