//! Certify one workload: race-freedom of its op streams, then a full
//! protocol audit under every paper configuration.
//!
//! ```sh
//! cargo run --release -p genima-check --example check_workloads
//! ```

use genima_apps::{App, WaterNsquared};
use genima_check::{check_app_races, run_app_audited};
use genima_proto::{FeatureSet, Topology};

fn main() {
    let topo = Topology::new(2, 2);
    let app = WaterNsquared::with_molecules(256, 1);

    match check_app_races(&app, topo) {
        Ok(races) if races.is_empty() => {
            println!("{}: race-free under happens-before", app.name());
        }
        Ok(races) => {
            println!("{}: {} race(s)!", app.name(), races.len());
            for r in races {
                println!("  {r:?}");
            }
        }
        Err(err) => println!("{}: schedule error: {err}", app.name()),
    }

    for features in FeatureSet::ALL {
        let run = run_app_audited(&app, topo, features);
        println!(
            "{:<9} proto events {:>5}, NI lock events {:>4}, interrupts {:>4} -> {}",
            features.name(),
            run.audit.proto_events,
            run.audit.lock_events,
            run.report.counters.interrupts,
            if run.audit.is_clean() {
                "clean".to_string()
            } else {
                format!("{} violation(s)", run.audit.violations.len())
            }
        );
    }
}
