//! Protocol-invariant auditing over recorded traces.
//!
//! [`audit_traces`] replays the structured event trace produced by
//! `SvmSystem::set_tracing` and the NI lock-ownership trace produced by
//! the firmware, and checks the paper's correctness invariants:
//!
//! 1. **Timestamp coverage** — a fetched page installed into a node's
//!    cache, and the copy a faulting process resumes on, must carry a
//!    version covering the process's vector-clock requirement
//!    ([`Violation::StaleInstall`], [`Violation::StaleFault`]).
//! 2. **Notices before access** — when an acquire or barrier completes,
//!    interval records for every interval the new clock covers must
//!    already be present at the node ([`Violation::MissingNotices`]).
//! 3. **Diff ordering** — diffs apply to a home page in per-writer
//!    interval order ([`Violation::DiffOrderRegression`]).
//! 4. **Single lock owner** — replaying the firmware grant/transfer
//!    chain from the lock's home, at most one NIC owns a lock at any
//!    instant ([`Violation::LockDoubleOwner`],
//!    [`Violation::LockPhantomRelease`]).
//! 5. **Zero interrupts** — an interrupt-free configuration (full
//!    GeNIMA) must record no host interrupt at all
//!    ([`Violation::UnexpectedInterrupt`]).
//! 6. **Barrier epochs** — under NI-tree barriers, no node may exit
//!    epoch `e` of a barrier before every node's arrival for `e` has
//!    been combined, and no node exits the same epoch twice
//!    ([`Violation::EarlyBarrierExit`],
//!    [`Violation::DuplicateBarrierExit`]).

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use genima_proto::{FeatureSet, LockChange, LockId, LockTrace, PageId, ProcId, TraceEvent, TsMap};
use genima_sim::Time;

/// One invariant violation found while replaying a trace.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Violation {
    /// A page copy was installed whose timestamp does not cover the
    /// joined requirement of the processes waiting on the fetch.
    StaleInstall {
        /// Installation time.
        at: Time,
        /// The caching node.
        node: usize,
        /// The page installed.
        page: PageId,
        /// The first writer whose intervals are missing.
        writer: u32,
        /// Interval the installed copy carries for that writer.
        have: u32,
        /// Interval the waiters require.
        need: u32,
    },
    /// A process resumed from a page fault on a copy older than its
    /// vector clock obliges it to see.
    StaleFault {
        /// Fault completion time.
        at: Time,
        /// The faulting process.
        proc: usize,
        /// The page faulted on.
        page: PageId,
        /// The first writer whose intervals are missing.
        writer: u32,
        /// Interval the visible copy carries for that writer.
        have: u32,
        /// Interval the process requires.
        need: u32,
    },
    /// An acquire or barrier completed before the write notices for
    /// every covered interval had arrived at the node.
    MissingNotices {
        /// Synchronization completion time.
        at: Time,
        /// The resuming process.
        proc: usize,
        /// The writer whose notices are missing.
        writer: usize,
        /// Interval records present at the node for that writer.
        have: u32,
        /// Intervals the process's clock covers.
        need: u32,
    },
    /// A diff applied to a home page out of per-writer interval order.
    DiffOrderRegression {
        /// Application time of the regressing diff.
        at: Time,
        /// The home page.
        page: PageId,
        /// The writing process.
        writer: usize,
        /// Highest interval previously applied for that writer.
        prev: u32,
        /// The regressing interval.
        got: u32,
    },
    /// A NIC was granted a lock while the replayed chain says another
    /// NIC (or the same one) already owned it.
    LockDoubleOwner {
        /// Grant time.
        at: Time,
        /// The lock concerned.
        lock: LockId,
        /// The NIC that was granted ownership.
        nic: usize,
        /// The NIC the replay says still owns the lock.
        owner: usize,
    },
    /// A NIC ceded a lock the replayed chain says it did not own.
    LockPhantomRelease {
        /// Release time.
        at: Time,
        /// The lock concerned.
        lock: LockId,
        /// The NIC that ceded ownership.
        nic: usize,
        /// The NIC the replay says owns the lock, if any.
        owner: Option<usize>,
    },
    /// A host interrupt fired under an interrupt-free configuration.
    UnexpectedInterrupt {
        /// Interrupt delivery time.
        at: Time,
        /// The interrupted node.
        node: usize,
    },
    /// A node was released from a barrier epoch before every node's
    /// arrival for that epoch had been combined by the NI tree.
    EarlyBarrierExit {
        /// Release time at the node.
        at: Time,
        /// The prematurely released node.
        node: usize,
        /// The barrier concerned.
        barrier: usize,
        /// The epoch exited.
        epoch: u32,
        /// Distinct nodes whose arrivals were combined by then.
        have: usize,
        /// Arrivals a release requires (the node count).
        need: usize,
    },
    /// A node was released from the same barrier epoch twice.
    DuplicateBarrierExit {
        /// Time of the second release.
        at: Time,
        /// The doubly released node.
        node: usize,
        /// The barrier concerned.
        barrier: usize,
        /// The epoch exited twice.
        epoch: u32,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::StaleInstall {
                at,
                node,
                page,
                writer,
                have,
                need,
            } => write!(
                f,
                "[{at}] stale install of {page:?} at node {node}: \
                 writer {writer} at interval {have}, waiters need {need}"
            ),
            Violation::StaleFault {
                at,
                proc,
                page,
                writer,
                have,
                need,
            } => write!(
                f,
                "[{at}] p{proc} resumed on stale {page:?}: \
                 writer {writer} at interval {have}, clock requires {need}"
            ),
            Violation::MissingNotices {
                at,
                proc,
                writer,
                have,
                need,
            } => write!(
                f,
                "[{at}] p{proc} finished an acquire with only {have} of \
                 writer {writer}'s {need} covered intervals present"
            ),
            Violation::DiffOrderRegression {
                at,
                page,
                writer,
                prev,
                got,
            } => write!(
                f,
                "[{at}] diff order regression on {page:?}: writer {writer} \
                 applied interval {got} after {prev}"
            ),
            Violation::LockDoubleOwner {
                at,
                lock,
                nic,
                owner,
            } => write!(
                f,
                "[{at}] {lock} granted to nic{nic} while nic{owner} owns it"
            ),
            Violation::LockPhantomRelease {
                at,
                lock,
                nic,
                owner,
            } => write!(
                f,
                "[{at}] nic{nic} ceded {lock} it does not own (owner: {owner:?})"
            ),
            Violation::UnexpectedInterrupt { at, node } => write!(
                f,
                "[{at}] host interrupt on node {node} under an \
                 interrupt-free configuration"
            ),
            Violation::EarlyBarrierExit {
                at,
                node,
                barrier,
                epoch,
                have,
                need,
            } => write!(
                f,
                "[{at}] node {node} exited epoch {epoch} of barrier{barrier} \
                 with only {have} of {need} arrivals combined"
            ),
            Violation::DuplicateBarrierExit {
                at,
                node,
                barrier,
                epoch,
            } => write!(
                f,
                "[{at}] node {node} exited epoch {epoch} of barrier{barrier} twice"
            ),
        }
    }
}

/// The result of auditing one run's traces.
#[derive(Clone, Debug, Default)]
pub struct Audit {
    /// Protocol events examined.
    pub proto_events: usize,
    /// NI lock-ownership events examined.
    pub lock_events: usize,
    /// Every invariant violation found, in replay order.
    pub violations: Vec<Violation>,
}

impl Audit {
    /// `true` when no invariant was violated.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

impl fmt::Display for Audit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_clean() {
            write!(
                f,
                "audit clean over {} protocol and {} lock events",
                self.proto_events, self.lock_events
            )
        } else {
            writeln!(f, "{} violation(s):", self.violations.len())?;
            for v in &self.violations {
                writeln!(f, "  {v}")?;
            }
            Ok(())
        }
    }
}

/// Returns the first `(writer, have, need)` for which `ts` fails to
/// cover `required`, or `None` when covered.
fn first_uncovered(ts: &TsMap, required: &TsMap) -> Option<(u32, u32, u32)> {
    for (&writer, &need) in required {
        let have = ts.get(&writer).copied().unwrap_or(0);
        if have < need {
            return Some((writer, have, need));
        }
    }
    None
}

/// Replays the protocol and lock traces of one run and checks every
/// invariant described at module level.
///
/// `features` selects the invariants that apply (the zero-interrupt
/// check only binds interrupt-free configurations); `nnodes` is needed
/// to seed the lock replay with each lock's home NIC (locks are
/// assigned round-robin, `lock.index() % nnodes`, and a lock's home
/// owns it until the first remote grant).
pub fn audit_traces(
    features: FeatureSet,
    nnodes: usize,
    proto: &[TraceEvent],
    locks: &[LockTrace],
) -> Audit {
    let mut audit = Audit {
        proto_events: proto.len(),
        lock_events: locks.len(),
        violations: Vec::new(),
    };

    // Replay in emission order, NOT timestamp order: protocol state
    // mutates in execution order, while an event's `at` can be a
    // process's lookahead cursor (a local-home flush stamps the
    // flushing process's clock), so timestamps are not monotonic
    // across processes. Emission order is the order the home copy
    // actually changed in.
    //
    // Highest interval applied so far, per (home page, writer).
    let mut applied: BTreeMap<(PageId, usize), u32> = BTreeMap::new();
    // NI-tree barriers: nodes whose arrival was combined, per
    // (barrier, epoch), and nodes already released from that epoch.
    let mut coll_arrived: BTreeMap<(usize, u32), BTreeSet<usize>> = BTreeMap::new();
    let mut coll_released: BTreeSet<(usize, u32, usize)> = BTreeSet::new();

    for ev in proto {
        match ev {
            TraceEvent::Interrupt { at, node } => {
                if features.interrupt_free() {
                    audit.violations.push(Violation::UnexpectedInterrupt {
                        at: *at,
                        node: *node,
                    });
                }
            }
            TraceEvent::PageInstalled {
                at,
                node,
                page,
                ts,
                required,
            } => {
                if let Some((writer, have, need)) = first_uncovered(ts, required) {
                    audit.violations.push(Violation::StaleInstall {
                        at: *at,
                        node: *node,
                        page: *page,
                        writer,
                        have,
                        need,
                    });
                }
            }
            TraceEvent::FaultDone {
                at,
                proc,
                page,
                ts,
                required,
            } => {
                if let Some((writer, have, need)) = first_uncovered(ts, required) {
                    audit.violations.push(Violation::StaleFault {
                        at: *at,
                        proc: *proc,
                        page: *page,
                        writer,
                        have,
                        need,
                    });
                }
            }
            TraceEvent::DiffApplied {
                at,
                page,
                writer,
                interval,
            } => {
                let prev = applied.entry((*page, *writer)).or_insert(0);
                // Early flushes may re-apply the same interval number;
                // only a strict regression breaks the invariant.
                if *interval < *prev {
                    audit.violations.push(Violation::DiffOrderRegression {
                        at: *at,
                        page: *page,
                        writer: *writer,
                        prev: *prev,
                        got: *interval,
                    });
                } else {
                    *prev = *interval;
                }
            }
            TraceEvent::CollArrived {
                node,
                barrier,
                epoch,
                ..
            } => {
                coll_arrived
                    .entry((*barrier, *epoch))
                    .or_default()
                    .insert(*node);
            }
            TraceEvent::CollReleased {
                at,
                node,
                barrier,
                epoch,
            } => {
                let have = coll_arrived
                    .get(&(*barrier, *epoch))
                    .map(|s| s.len())
                    .unwrap_or(0);
                if have < nnodes {
                    audit.violations.push(Violation::EarlyBarrierExit {
                        at: *at,
                        node: *node,
                        barrier: *barrier,
                        epoch: *epoch,
                        have,
                        need: nnodes,
                    });
                }
                if !coll_released.insert((*barrier, *epoch, *node)) {
                    audit.violations.push(Violation::DuplicateBarrierExit {
                        at: *at,
                        node: *node,
                        barrier: *barrier,
                        epoch: *epoch,
                    });
                }
            }
            TraceEvent::SyncDone {
                at,
                proc,
                vc,
                arrived,
            } => {
                for q in 0..vc.len() {
                    let need = vc.get(ProcId::new(q));
                    let have = arrived.get(q).copied().unwrap_or(0);
                    // A process's own intervals need no notices.
                    if q != *proc && have < need {
                        audit.violations.push(Violation::MissingNotices {
                            at: *at,
                            proc: *proc,
                            writer: q,
                            have,
                            need,
                        });
                    }
                }
            }
        }
    }

    audit_locks(nnodes, locks, &mut audit);
    audit
}

/// Replays the NI lock-ownership chain: per lock, exactly one owner at
/// a time, starting from the lock's home NIC.
fn audit_locks(nnodes: usize, locks: &[LockTrace], audit: &mut Audit) {
    let mut sorted: Vec<&LockTrace> = locks.iter().collect();
    sorted.sort_by_key(|t| t.at);

    // Current owner per lock; a lock's home owns it from reset.
    let mut owner: BTreeMap<LockId, Option<usize>> = BTreeMap::new();

    for t in sorted {
        let nic = t.nic.index();
        let slot = owner
            .entry(t.lock)
            .or_insert_with(|| Some(t.lock.index() % nnodes));
        match t.change {
            LockChange::Acquired => match *slot {
                Some(cur) if cur != nic => {
                    audit.violations.push(Violation::LockDoubleOwner {
                        at: t.at,
                        lock: t.lock,
                        nic,
                        owner: cur,
                    });
                    *slot = Some(nic);
                }
                Some(_) | None => *slot = Some(nic),
            },
            LockChange::Released => {
                if *slot != Some(nic) {
                    audit.violations.push(Violation::LockPhantomRelease {
                        at: t.at,
                        lock: t.lock,
                        nic,
                        owner: *slot,
                    });
                }
                *slot = None;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use genima_nic::NicId;

    fn ts(pairs: &[(u32, u32)]) -> TsMap {
        pairs.iter().copied().collect()
    }

    #[test]
    fn covered_install_is_clean() {
        let ev = [TraceEvent::PageInstalled {
            at: Time::from_ns(10),
            node: 0,
            page: PageId::new(3),
            ts: ts(&[(1, 5)]),
            required: ts(&[(1, 4)]),
        }];
        assert!(audit_traces(FeatureSet::genima(), 2, &ev, &[]).is_clean());
    }

    #[test]
    fn stale_install_is_flagged() {
        let ev = [TraceEvent::PageInstalled {
            at: Time::from_ns(10),
            node: 1,
            page: PageId::new(3),
            ts: ts(&[(1, 2)]),
            required: ts(&[(1, 4)]),
        }];
        let audit = audit_traces(FeatureSet::genima(), 2, &ev, &[]);
        assert_eq!(audit.violations.len(), 1);
        assert!(matches!(
            audit.violations[0],
            Violation::StaleInstall {
                writer: 1,
                have: 2,
                need: 4,
                ..
            }
        ));
    }

    #[test]
    fn stale_fault_completion_is_flagged() {
        let ev = [TraceEvent::FaultDone {
            at: Time::from_ns(20),
            proc: 2,
            page: PageId::new(7),
            ts: TsMap::new(),
            required: ts(&[(0, 1)]),
        }];
        let audit = audit_traces(FeatureSet::base(), 2, &ev, &[]);
        assert!(matches!(
            audit.violations[0],
            Violation::StaleFault { proc: 2, .. }
        ));
    }

    #[test]
    fn diff_regression_is_flagged_but_repeats_are_not() {
        let page = PageId::new(1);
        let d = |at, interval| TraceEvent::DiffApplied {
            at: Time::from_ns(at),
            page,
            writer: 0,
            interval,
        };
        // 1, 2, 2 (early-flush repeat) is fine; then 1 regresses.
        let ev = [d(1, 1), d(2, 2), d(3, 2), d(4, 1)];
        let audit = audit_traces(FeatureSet::base(), 2, &ev, &[]);
        assert_eq!(audit.violations.len(), 1);
        assert!(matches!(
            audit.violations[0],
            Violation::DiffOrderRegression {
                prev: 2,
                got: 1,
                ..
            }
        ));
    }

    #[test]
    fn missing_notices_are_flagged() {
        let mut vc = genima_proto::VClock::new(2);
        vc.set(ProcId::new(1), 3);
        let ev = [TraceEvent::SyncDone {
            at: Time::from_ns(5),
            proc: 0,
            vc,
            arrived: vec![0, 2],
        }];
        let audit = audit_traces(FeatureSet::base(), 1, &ev, &[]);
        assert!(matches!(
            audit.violations[0],
            Violation::MissingNotices {
                writer: 1,
                have: 2,
                need: 3,
                ..
            }
        ));
    }

    #[test]
    fn own_intervals_need_no_notices() {
        let mut vc = genima_proto::VClock::new(2);
        vc.set(ProcId::new(0), 9);
        let ev = [TraceEvent::SyncDone {
            at: Time::from_ns(5),
            proc: 0,
            vc,
            arrived: vec![0, 0],
        }];
        assert!(audit_traces(FeatureSet::base(), 1, &ev, &[]).is_clean());
    }

    #[test]
    fn interrupts_flagged_only_when_interrupt_free() {
        let ev = [TraceEvent::Interrupt {
            at: Time::from_ns(1),
            node: 0,
        }];
        assert!(audit_traces(FeatureSet::base(), 2, &ev, &[]).is_clean());
        let audit = audit_traces(FeatureSet::genima(), 2, &ev, &[]);
        assert!(matches!(
            audit.violations[0],
            Violation::UnexpectedInterrupt { node: 0, .. }
        ));
    }

    fn arrive(at: u64, node: usize, epoch: u32) -> TraceEvent {
        TraceEvent::CollArrived {
            at: Time::from_ns(at),
            node,
            barrier: 0,
            epoch,
        }
    }

    fn release(at: u64, node: usize, epoch: u32) -> TraceEvent {
        TraceEvent::CollReleased {
            at: Time::from_ns(at),
            node,
            barrier: 0,
            epoch,
        }
    }

    #[test]
    fn full_barrier_epoch_is_clean() {
        let ev = [
            arrive(1, 0, 0),
            arrive(2, 1, 0),
            arrive(3, 2, 0),
            release(4, 0, 0),
            release(5, 1, 0),
            release(6, 2, 0),
            // Next epoch of the same barrier starts over.
            arrive(7, 2, 1),
            arrive(8, 0, 1),
            arrive(9, 1, 1),
            release(10, 0, 1),
            release(11, 1, 1),
            release(12, 2, 1),
        ];
        assert!(audit_traces(FeatureSet::genima(), 3, &ev, &[]).is_clean());
    }

    #[test]
    fn early_barrier_exit_is_flagged() {
        // Node 1 never arrives, yet node 0 is released.
        let ev = [arrive(1, 0, 0), release(2, 0, 0)];
        let audit = audit_traces(FeatureSet::genima(), 2, &ev, &[]);
        assert_eq!(audit.violations.len(), 1);
        assert!(matches!(
            audit.violations[0],
            Violation::EarlyBarrierExit {
                node: 0,
                epoch: 0,
                have: 1,
                need: 2,
                ..
            }
        ));
    }

    #[test]
    fn duplicate_barrier_exit_is_flagged() {
        let ev = [
            arrive(1, 0, 0),
            arrive(2, 1, 0),
            release(3, 0, 0),
            release(4, 0, 0),
        ];
        let audit = audit_traces(FeatureSet::genima(), 2, &ev, &[]);
        assert_eq!(audit.violations.len(), 1);
        assert!(matches!(
            audit.violations[0],
            Violation::DuplicateBarrierExit { node: 0, .. }
        ));
    }

    #[test]
    fn lock_chain_from_home_is_clean() {
        // Lock 0 homes at nic 0 on a 2-node cluster: the home cedes it,
        // nic 1 gains it, cedes it back, nic 0 regains it.
        let l = LockId::new(0);
        let t = |at, nic, change| LockTrace {
            at: Time::from_ns(at),
            nic: NicId::new(nic),
            lock: l,
            change,
        };
        let trace = [
            t(10, 0, LockChange::Released),
            t(20, 1, LockChange::Acquired),
            t(30, 1, LockChange::Released),
            t(40, 0, LockChange::Acquired),
        ];
        assert!(audit_traces(FeatureSet::genima(), 2, &[], &trace).is_clean());
    }

    #[test]
    fn double_grant_is_flagged() {
        let l = LockId::new(0);
        let t = |at, nic, change| LockTrace {
            at: Time::from_ns(at),
            nic: NicId::new(nic),
            lock: l,
            change,
        };
        // Home (nic 0) never ceded, yet nic 1 is granted the lock.
        let trace = [t(20, 1, LockChange::Acquired)];
        let audit = audit_traces(FeatureSet::genima(), 2, &[], &trace);
        assert!(matches!(
            audit.violations[0],
            Violation::LockDoubleOwner {
                nic: 1,
                owner: 0,
                ..
            }
        ));
    }

    #[test]
    fn phantom_release_is_flagged() {
        let l = LockId::new(1); // homes at nic 1 on 2 nodes
        let trace = [LockTrace {
            at: Time::from_ns(5),
            nic: NicId::new(0),
            lock: l,
            change: LockChange::Released,
        }];
        let audit = audit_traces(FeatureSet::genima(), 2, &[], &trace);
        assert!(matches!(
            audit.violations[0],
            Violation::LockPhantomRelease {
                nic: 0,
                owner: Some(1),
                ..
            }
        ));
    }
}
