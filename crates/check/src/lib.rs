//! Correctness checking for the GeNIMA reproduction: a happens-before
//! race detector over application op streams and a protocol-invariant
//! auditor over recorded run traces.
//!
//! Two independent layers of assurance:
//!
//! * [`detect_races`] executes per-process [`Op`](genima_proto::Op)
//!   streams under FastTrack-style vector clocks and reports pairs of
//!   conflicting accesses not ordered by the streams' locks and
//!   barriers. Release consistency only promises coherent data to
//!   race-free programs, so every workload the simulator runs must
//!   pass this first.
//! * [`audit_traces`] replays the structured event trace of an actual
//!   protocol run (page installs, fault completions, diff
//!   applications, acquire completions, interrupts, NI lock ownership)
//!   and checks the protocol's own invariants under each of the five
//!   paper configurations.
//!
//! [`run_app_audited`] wires the second layer to a real run: it builds
//! the cluster exactly like `genima::run_app`, switches tracing on,
//! runs to completion and audits the drained traces. [`app_programs`]
//! materialises an application's streams for the first layer.

mod audit;
mod race;

pub use audit::{audit_traces, Audit, Violation};
pub use race::{detect_races, AccessSite, Race, ScheduleError, CELL_BYTES};

use genima_apps::App;
use genima_proto::{Column, FeatureSet, Op, ProtoError, RunReport, SvmSystem, Topology};

/// One application run with tracing enabled and its audit result.
#[derive(Debug, Clone)]
pub struct AuditedRun {
    /// The protocol variant used.
    pub features: FeatureSet,
    /// The full measurement report.
    pub report: RunReport,
    /// The invariant audit over the run's traces.
    pub audit: Audit,
}

/// Materialises `app`'s per-process op streams for [`detect_races`].
pub fn app_programs(app: &dyn App, topo: Topology) -> Vec<Vec<Op>> {
    app.spec(topo)
        .sources
        .into_iter()
        .map(|mut src| {
            let mut ops = Vec::new();
            while let Some(op) = src.next_op() {
                ops.push(op);
            }
            ops
        })
        .collect()
}

/// Runs the race detector over `app`'s streams on `topo`.
///
/// # Errors
///
/// Propagates [`ScheduleError`] when the streams cannot be executed
/// to completion (deadlock or a release without a matching hold).
pub fn check_app_races(app: &dyn App, topo: Topology) -> Result<Vec<Race>, ScheduleError> {
    detect_races(&app_programs(app, topo))
}

/// Runs `app` on the SVM cluster with tracing enabled and audits the
/// protocol and NI lock traces against every applicable invariant.
///
/// Mirrors `genima::run_app` exactly, so an audited run measures the
/// same system as an ordinary one (tracing is purely observational).
pub fn run_app_audited(app: &dyn App, topo: Topology, features: FeatureSet) -> AuditedRun {
    run_app_audited_with(app, topo, features, |_| {})
        .expect("a fault-free audited run cannot abort")
}

/// Runs `app` with tracing enabled for one evaluation [`Column`] and
/// audits the traces. `Column::genima_2025()` audits the full GeNIMA
/// protocol on the 2025 RNIC with masked-CAS locks (the NI lock-chain
/// replay sees no firmware grant events there; the protocol invariants
/// and the interrupt-free cross-check still apply in full).
pub fn run_app_audited_on(app: &dyn App, topo: Topology, column: Column) -> AuditedRun {
    run_app_audited_on_with(app, topo, column, |_| {})
        .expect("a fault-free audited run cannot abort")
}

/// Like [`run_app_audited`], but lets `configure` adjust the built
/// [`SvmSystem`] before the run — typically to install a fault
/// injector — and surfaces a run abort instead of panicking.
///
/// This is how the fault sweeps audit faulty runs: recovery machinery
/// (retransmits, duplicate suppression, backoff) must preserve every
/// protocol invariant the clean path satisfies.
///
/// # Errors
///
/// Returns [`ProtoError::PeerUnreachable`] when a node exhausts its
/// retransmission budget against an unresponsive peer, and
/// [`ProtoError::InvalidReport`] when the finished run's report fails
/// [`RunReport::validate`].
pub fn run_app_audited_with(
    app: &dyn App,
    topo: Topology,
    features: FeatureSet,
    configure: impl FnOnce(&mut SvmSystem),
) -> Result<AuditedRun, ProtoError> {
    run_app_audited_on_with(app, topo, Column::lanai(features), configure)
}

/// Like [`run_app_audited_on`], but lets `configure` adjust the built
/// [`SvmSystem`] before the run and surfaces a run abort instead of
/// panicking.
///
/// # Errors
///
/// Same contract as [`run_app_audited_with`].
pub fn run_app_audited_on_with(
    app: &dyn App,
    topo: Topology,
    column: Column,
    configure: impl FnOnce(&mut SvmSystem),
) -> Result<AuditedRun, ProtoError> {
    let features = column.features;
    let spec = app.spec(topo);
    let mut params = column.params(topo);
    params.locks = spec.locks.max(1);
    params.bus_demand_per_proc = spec.bus_demand_per_proc;
    params.warmup_barrier = spec.warmup_barrier;
    let mut sys = SvmSystem::new(params, spec.sources);
    for (start, count, node) in spec.homes {
        sys.assign_homes(start, count, node);
    }
    sys.set_tracing(true);
    configure(&mut sys);
    let report = sys.try_run()?;
    // Self-consistency of the measurements themselves: breakdown
    // categories must account for the parallel time and interrupt-free
    // columns must report zero host interrupts.
    report.validate(&features)?;
    let proto = sys.take_trace();
    let locks = sys.take_lock_trace();
    let mut audit = audit_traces(features, topo.nodes, &proto, &locks);

    // Cross-check the interrupt counter against the trace: the counter
    // increments even where tracing might miss an event, so an
    // interrupt-free configuration must show zero in both.
    if features.interrupt_free() && report.counters.interrupts > 0 && audit.is_clean() {
        audit.violations.push(Violation::UnexpectedInterrupt {
            at: genima_sim::Time::ZERO,
            node: usize::MAX,
        });
    }

    Ok(AuditedRun {
        features,
        report,
        audit,
    })
}
