//! Happens-before race detection over application operation streams.
//!
//! The detector executes the per-process [`Op`] streams under a
//! deterministic round-robin scheduler that honours lock exclusion and
//! barrier arrival, maintaining FastTrack-style vector clocks:
//!
//! * each process `p` carries a clock `C_p` (initially `C_p[p] = 1`);
//! * `Release(l)` stores `C_p` into the lock clock `L_l` and then
//!   bumps `C_p[p]`;
//! * `Acquire(l)` joins `L_l` into `C_p`;
//! * a barrier joins the clocks of every arriving process and bumps
//!   each process's own slot.
//!
//! Shared accesses are checked at **byte-range precision** against a
//! shadow memory indexed by 64-byte cell: each cell holds, per
//! process, the byte range and epoch of the last write and the last
//! read that touched it. Two accesses conflict when their byte ranges
//! overlap and at least one writes; they race when the recorded epoch
//! does not happen-before the later access's clock. Byte precision
//! matters here: a page-based SVM with a multiple-writer protocol
//! tolerates *false sharing* (disjoint writes to the same cell, page
//! or cache line merge cleanly through twin/diff), so only genuinely
//! overlapping unordered accesses are protocol-visible races.
//!
//! The shadow keeps a small set of write and read segments per cell.
//! A segment is dropped only when the same process covers its whole
//! byte range again at an equal or later epoch — any future conflict
//! with the dropped segment would also conflict with its replacement,
//! so no race is lost. Touching same-epoch segments merge, and a cell
//! spans only 64 bytes, so the per-cell set stays small.

use std::collections::HashMap;

use genima_proto::{BarrierId, LockId, Op, ProcId, VClock};

/// Shadow-cell granularity in bytes.
pub const CELL_BYTES: u64 = 64;

/// One shared access, identified by its position in an op stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AccessSite {
    /// The accessing process.
    pub proc: usize,
    /// Index of the operation in the process's stream.
    pub op_index: usize,
    /// `true` for writes.
    pub write: bool,
}

/// A detected race: two accesses with overlapping byte ranges, at
/// least one a write, not ordered by happens-before.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Race {
    /// First byte of the cell both accesses touched.
    pub cell_base: u64,
    /// The earlier access (still recorded in the shadow memory).
    pub first: AccessSite,
    /// The later access that completed the race.
    pub second: AccessSite,
}

/// The op streams could not be executed to completion.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ScheduleError {
    /// No process can make progress (lock cycle or barrier mismatch).
    Deadlock {
        /// The blocked processes and what each waits on.
        blocked: Vec<(usize, String)>,
    },
    /// A process released a lock it does not hold.
    ReleaseWithoutHold {
        /// The offending process.
        proc: usize,
        /// Index of the release in its stream.
        op_index: usize,
        /// The lock concerned.
        lock: LockId,
    },
}

impl std::fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScheduleError::Deadlock { blocked } => {
                write!(f, "op streams deadlock; blocked: {blocked:?}")
            }
            ScheduleError::ReleaseWithoutHold {
                proc,
                op_index,
                lock,
            } => write!(f, "p{proc} op #{op_index} releases {lock} it does not hold"),
        }
    }
}

impl std::error::Error for ScheduleError {}

/// One recorded access within a cell: the epoch and the byte range
/// (relative to the cell base) it covered.
#[derive(Clone, Copy)]
struct Seg {
    proc: usize,
    clock: u32,
    op_index: usize,
    /// Byte range `[start, end)` within the cell.
    start: u32,
    end: u32,
}

/// Shadow state of one 64-byte cell: the last write and last read per
/// process that touched it, with their byte ranges.
#[derive(Default)]
struct Cell {
    writes: Vec<Seg>,
    reads: Vec<Seg>,
}

fn overlaps(a: &Seg, start: u32, end: u32) -> bool {
    a.start < end && start < a.end
}

/// `true` if the epoch (`q`, `cq`) happens-before the clock `c`.
fn ordered(c: &VClock, q: usize, cq: u32) -> bool {
    cq <= c.get(ProcId::new(q))
}

/// What a process is blocked on.
enum Waiting {
    Lock(LockId),
    Barrier(BarrierId),
}

struct LockState {
    holder: Option<usize>,
    clock: VClock,
}

/// The detector state over one set of op streams.
struct Detector {
    clocks: Vec<VClock>,
    cells: HashMap<u64, Cell>,
    reported: std::collections::HashSet<u64>,
    races: Vec<Race>,
}

impl Detector {
    fn new(nprocs: usize) -> Detector {
        let clocks = (0..nprocs)
            .map(|p| {
                let mut c = VClock::new(nprocs);
                // Epochs start at 1 so two never-synchronised accesses
                // are unordered (a slot of 0 would order everything).
                c.set(ProcId::new(p), 1);
                c
            })
            .collect();
        Detector {
            clocks,
            cells: HashMap::new(),
            reported: std::collections::HashSet::new(),
            races: Vec::new(),
        }
    }

    fn access(&mut self, p: usize, op_index: usize, addr: u64, len: u64, write: bool) {
        if len == 0 {
            return;
        }
        let first_cell = addr / CELL_BYTES;
        let last_cell = (addr + len - 1) / CELL_BYTES;
        for cell_id in first_cell..=last_cell {
            let base = cell_id * CELL_BYTES;
            let start = addr.max(base) - base;
            let end = (addr + len).min(base + CELL_BYTES) - base;
            self.touch_cell(cell_id, p, op_index, write, start as u32, end as u32);
        }
    }

    fn touch_cell(
        &mut self,
        cell_id: u64,
        p: usize,
        op_index: usize,
        write: bool,
        start: u32,
        end: u32,
    ) {
        let me = self.clocks[p].get(ProcId::new(p));
        let mut race: Option<Race> = None;
        let cell = self.cells.entry(cell_id).or_default();

        for seg in &cell.writes {
            if seg.proc != p
                && overlaps(seg, start, end)
                && !ordered(&self.clocks[p], seg.proc, seg.clock)
            {
                race = Some(Race {
                    cell_base: cell_id * CELL_BYTES,
                    first: AccessSite {
                        proc: seg.proc,
                        op_index: seg.op_index,
                        write: true,
                    },
                    second: AccessSite {
                        proc: p,
                        op_index,
                        write,
                    },
                });
                break;
            }
        }
        if write && race.is_none() {
            for seg in &cell.reads {
                if seg.proc != p
                    && overlaps(seg, start, end)
                    && !ordered(&self.clocks[p], seg.proc, seg.clock)
                {
                    race = Some(Race {
                        cell_base: cell_id * CELL_BYTES,
                        first: AccessSite {
                            proc: seg.proc,
                            op_index: seg.op_index,
                            write: false,
                        },
                        second: AccessSite {
                            proc: p,
                            op_index,
                            write: true,
                        },
                    });
                    break;
                }
            }
        }

        let seg = Seg {
            proc: p,
            clock: me,
            op_index,
            start,
            end,
        };
        let slot = if write {
            &mut cell.writes
        } else {
            &mut cell.reads
        };
        // Drop own segments the new range fully covers at an equal or
        // later epoch: a future access that would conflict with the
        // dropped segment also conflicts with this one, and this one's
        // epoch races whenever the older epoch would have.
        slot.retain(|s| !(s.proc == p && s.clock <= me && start <= s.start && s.end <= end));
        match slot
            .iter_mut()
            .find(|s| s.proc == p && s.clock == me && s.end >= start && end >= s.start)
        {
            // Same epoch, touching ranges: widen in place (one logical
            // access split across ops).
            Some(s) => {
                s.start = s.start.min(start);
                s.end = s.end.max(end);
                s.op_index = op_index;
            }
            None => slot.push(seg),
        }

        if let Some(r) = race {
            if self.reported.insert(cell_id) {
                self.races.push(r);
            }
        }
    }
}

/// Runs the detector over one pre-materialised op stream per process.
///
/// Returns every detected race, at most one per 64-byte cell, in
/// detection order. An empty vector means the streams are race-free
/// under the happens-before relation induced by their locks and
/// barriers.
///
/// # Errors
///
/// Returns a [`ScheduleError`] when the streams cannot be executed to
/// completion (deadlock, or a release without a matching hold).
pub fn detect_races(programs: &[Vec<Op>]) -> Result<Vec<Race>, ScheduleError> {
    let nprocs = programs.len();
    let mut det = Detector::new(nprocs);
    let mut cursor = vec![0usize; nprocs];
    let mut waiting: Vec<Option<Waiting>> = (0..nprocs).map(|_| None).collect();
    let mut locks: HashMap<LockId, LockState> = HashMap::new();
    let mut barrier_arrived: HashMap<BarrierId, Vec<usize>> = HashMap::new();

    let done = |cursor: &[usize], p: usize| cursor[p] >= programs[p].len();

    loop {
        if (0..nprocs).all(|p| done(&cursor, p)) {
            return Ok(det.races);
        }
        let mut progress = false;
        for p in 0..nprocs {
            // Re-check the wait condition for a blocked process.
            match waiting[p] {
                Some(Waiting::Lock(l)) => {
                    let st = locks.entry(l).or_insert_with(|| LockState {
                        holder: None,
                        clock: VClock::new(nprocs),
                    });
                    if st.holder.is_none() {
                        st.holder = Some(p);
                        let lc = st.clock.clone();
                        det.clocks[p].join(&lc);
                        waiting[p] = None;
                        cursor[p] += 1;
                        progress = true;
                    } else {
                        continue;
                    }
                }
                Some(Waiting::Barrier(_)) => continue,
                None => {}
            }

            // Run until this process blocks or finishes.
            while cursor[p] < programs[p].len() {
                let i = cursor[p];
                match &programs[p][i] {
                    Op::Compute(_) => {}
                    // Pure timing / bookkeeping markers: no shared
                    // accesses, no synchronization edges.
                    Op::WaitUntil(_) | Op::ServeEnd { .. } => {}
                    Op::Read { addr, len } => {
                        det.access(p, i, addr.value(), *len as u64, false);
                    }
                    Op::Validate { addr, expected } => {
                        det.access(p, i, addr.value(), expected.len() as u64, false);
                    }
                    Op::Observe { addr, len } => {
                        det.access(p, i, addr.value(), *len as u64, false);
                    }
                    Op::Write { addr, len } => {
                        det.access(p, i, addr.value(), *len as u64, true);
                    }
                    Op::WriteData { addr, data } => {
                        det.access(p, i, addr.value(), data.len() as u64, true);
                    }
                    Op::Acquire(l) => {
                        let st = locks.entry(*l).or_insert_with(|| LockState {
                            holder: None,
                            clock: VClock::new(nprocs),
                        });
                        match st.holder {
                            None => {
                                st.holder = Some(p);
                                let lc = st.clock.clone();
                                det.clocks[p].join(&lc);
                            }
                            Some(h) if h == p => {} // re-entrant hold
                            Some(_) => {
                                waiting[p] = Some(Waiting::Lock(*l));
                                break;
                            }
                        }
                    }
                    Op::Release(l) => {
                        let Some(st) = locks.get_mut(l) else {
                            return Err(ScheduleError::ReleaseWithoutHold {
                                proc: p,
                                op_index: i,
                                lock: *l,
                            });
                        };
                        if st.holder != Some(p) {
                            return Err(ScheduleError::ReleaseWithoutHold {
                                proc: p,
                                op_index: i,
                                lock: *l,
                            });
                        }
                        st.clock = det.clocks[p].clone();
                        st.holder = None;
                        det.clocks[p].bump(ProcId::new(p));
                    }
                    Op::Barrier(b) => {
                        let arrived = barrier_arrived.entry(*b).or_default();
                        arrived.push(p);
                        if arrived.len() == nprocs {
                            // Everyone is here: join all clocks, bump
                            // each slot, release everyone.
                            let members = std::mem::take(arrived);
                            let mut joined = VClock::new(nprocs);
                            for &q in &members {
                                joined.join(&det.clocks[q]);
                            }
                            for &q in &members {
                                det.clocks[q] = joined.clone();
                                det.clocks[q].bump(ProcId::new(q));
                                if q != p {
                                    waiting[q] = None;
                                    cursor[q] += 1;
                                }
                            }
                        } else {
                            waiting[p] = Some(Waiting::Barrier(*b));
                            break;
                        }
                    }
                }
                cursor[p] += 1;
                progress = true;
            }
        }
        if !progress {
            let blocked = (0..nprocs)
                .filter(|&p| !done(&cursor, p))
                .map(|p| {
                    let what = match &waiting[p] {
                        Some(Waiting::Lock(l)) => format!("{l}"),
                        Some(Waiting::Barrier(b)) => format!("barrier{}", b.index()),
                        None => "runnable?".to_string(),
                    };
                    (p, what)
                })
                .collect();
            return Err(ScheduleError::Deadlock { blocked });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use genima_proto::Addr;

    fn w(addr: u64, len: u32) -> Op {
        Op::Write {
            addr: Addr::new(addr),
            len,
        }
    }

    fn r(addr: u64, len: u32) -> Op {
        Op::Read {
            addr: Addr::new(addr),
            len,
        }
    }

    #[test]
    fn unsynchronised_writes_race() {
        let races = detect_races(&[vec![w(0, 4)], vec![w(0, 4)]]).unwrap();
        assert_eq!(races.len(), 1);
        assert_eq!(races[0].cell_base, 0);
    }

    #[test]
    fn lock_ordered_writes_do_not_race() {
        let a = vec![
            Op::Acquire(LockId::new(0)),
            w(0, 4),
            Op::Release(LockId::new(0)),
        ];
        let races = detect_races(&[a.clone(), a]).unwrap();
        assert!(races.is_empty());
    }

    #[test]
    fn barrier_orders_write_then_read() {
        let p0 = vec![w(128, 4), Op::Barrier(BarrierId::new(0))];
        let p1 = vec![Op::Barrier(BarrierId::new(0)), r(128, 4)];
        assert!(detect_races(&[p0, p1]).unwrap().is_empty());
    }

    #[test]
    fn read_write_without_order_races() {
        let p0 = vec![r(64, 4)];
        let p1 = vec![Op::Compute(genima_sim::Dur::from_us(1)), w(64, 4)];
        let races = detect_races(&[p0, p1]).unwrap();
        assert_eq!(races.len(), 1);
        assert!(races[0].second.write);
    }

    #[test]
    fn disjoint_cells_do_not_race() {
        let races = detect_races(&[vec![w(0, 4)], vec![w(64, 4)]]).unwrap();
        assert!(races.is_empty());
    }

    #[test]
    fn same_page_different_cells_do_not_race() {
        // Page-grain false sharing is not a data race.
        let races = detect_races(&[vec![w(0, 64)], vec![w(2048, 64)]]).unwrap();
        assert!(races.is_empty());
    }

    #[test]
    fn false_sharing_within_a_cell_does_not_race() {
        // Disjoint byte ranges in one 64-byte cell: the multiple-writer
        // protocol merges these cleanly, so they are not a race.
        let races = detect_races(&[vec![w(0, 24)], vec![w(32, 24)]]).unwrap();
        assert!(races.is_empty());
    }

    #[test]
    fn overlapping_ranges_within_a_cell_race() {
        let races = detect_races(&[vec![w(0, 24)], vec![w(16, 24)]]).unwrap();
        assert_eq!(races.len(), 1);
    }

    #[test]
    fn lock_protected_read_of_locked_write_is_ordered() {
        let l = LockId::new(3);
        let p0 = vec![Op::Acquire(l), w(256, 8), Op::Release(l)];
        let p1 = vec![Op::Acquire(l), r(256, 8), Op::Release(l)];
        assert!(detect_races(&[p0, p1]).unwrap().is_empty());
    }

    #[test]
    fn release_without_hold_is_an_error() {
        let err = detect_races(&[vec![Op::Release(LockId::new(0))]]).unwrap_err();
        assert!(matches!(err, ScheduleError::ReleaseWithoutHold { .. }));
    }

    #[test]
    fn lock_cycle_deadlocks() {
        let (a, b) = (LockId::new(0), LockId::new(1));
        let p0 = vec![
            Op::Acquire(a),
            Op::Barrier(BarrierId::new(0)),
            Op::Acquire(b),
        ];
        let p1 = vec![
            Op::Acquire(b),
            Op::Barrier(BarrierId::new(0)),
            Op::Acquire(a),
        ];
        let err = detect_races(&[p0, p1]).unwrap_err();
        assert!(matches!(err, ScheduleError::Deadlock { .. }));
    }

    #[test]
    fn race_is_reported_once_per_cell() {
        let p0 = vec![w(0, 4), w(0, 4), w(4, 4)];
        let p1 = vec![w(0, 4), w(4, 4)];
        let races = detect_races(&[p0, p1]).unwrap();
        assert_eq!(races.len(), 1, "cell 0 reported once: {races:?}");
    }

    #[test]
    fn multi_cell_access_checks_every_cell() {
        // A 128-byte write spans two cells; a conflicting write to the
        // second cell must be caught.
        let p0 = vec![w(0, 128)];
        let p1 = vec![w(64, 4)];
        let races = detect_races(&[p0, p1]).unwrap();
        assert_eq!(races.len(), 1);
        assert_eq!(races[0].cell_base, 64);
    }

    #[test]
    fn gap_between_same_epoch_segments_does_not_race() {
        // [0,4) and [32,36) are same-epoch but not touching, so they
        // must stay separate segments; a foreign write into the gap is
        // race-free. (A buggy merge into [0,36) would false-positive.)
        let races = detect_races(&[vec![w(0, 4), w(32, 4)], vec![w(8, 4)]]).unwrap();
        assert!(races.is_empty(), "{races:?}");
    }

    #[test]
    fn touching_same_epoch_writes_merge_in_place() {
        // [0,8) then [8,16) are one logical access split across ops:
        // they merge, and a conflicting access reports the merged
        // segment's latest op index.
        let races = detect_races(&[vec![w(0, 8), w(8, 8)], vec![w(12, 4)]]).unwrap();
        assert_eq!(races.len(), 1);
        assert_eq!(races[0].first.op_index, 1);
    }

    #[test]
    fn merge_widens_leftwards_too() {
        // The second write lands *before* the first ([8,16) then
        // [0,8)); the touching-range merge must handle either side.
        let races = detect_races(&[vec![w(8, 8), w(0, 8)], vec![w(4, 4)]]).unwrap();
        assert_eq!(races.len(), 1);
        assert_eq!(races[0].first.op_index, 1);
    }

    #[test]
    fn epoch_rollover_rewrite_supersedes_older_segment() {
        let l = LockId::new(0);
        // p0 writes [0,8), rolls its epoch over via the release bump,
        // and rewrites the same range. The epoch-1 segment is covered
        // and dropped; the unsynchronised foreign write must race
        // against the epoch-2 replacement (op 3), proving the drop
        // lost no conflict.
        let p0 = vec![Op::Acquire(l), w(0, 8), Op::Release(l), w(0, 8)];
        let p1 = vec![w(0, 8)];
        let races = detect_races(&[p0, p1]).unwrap();
        assert_eq!(races.len(), 1);
        assert_eq!(races[0].first.op_index, 3);
    }

    #[test]
    fn partial_later_epoch_write_keeps_the_wider_old_segment() {
        let l = LockId::new(0);
        // The epoch-2 write [0,8) covers only part of the epoch-1
        // [0,32) segment, so the old segment must survive — dropping
        // it would miss the race with a foreign write at [16,24).
        let p0 = vec![Op::Acquire(l), w(0, 32), Op::Release(l), w(0, 8)];
        let p1 = vec![w(16, 8)];
        let races = detect_races(&[p0, p1]).unwrap();
        assert_eq!(races.len(), 1);
        assert_eq!(races[0].first.op_index, 1);
    }

    #[test]
    fn touching_ranges_across_epochs_do_not_merge() {
        let l = LockId::new(0);
        // [0,8) at epoch 1 and [8,16) at epoch 2 touch but must not
        // merge: p1's lock-ordered read of [0,8) is race-free, while
        // its unordered read of [8,16) races with the epoch-2 half
        // only. A cross-epoch merge would misreport the first read.
        let p0 = vec![Op::Acquire(l), w(0, 8), Op::Release(l), w(8, 8)];
        let p1 = vec![Op::Acquire(l), r(0, 8), Op::Release(l), r(8, 8)];
        let races = detect_races(&[p0, p1]).unwrap();
        assert_eq!(races.len(), 1);
        assert_eq!(races[0].first.op_index, 3);
        assert_eq!(races[0].second.op_index, 3);
        assert!(!races[0].second.write);
    }
}
